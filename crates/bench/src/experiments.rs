//! Experiment drivers — one function per table/figure of §7.
//!
//! All workloads follow the paper's protocol: build the view(s), generate a
//! seeded "continuous random stream of rank-1 updates where each update
//! affects one row of an input matrix", and report the **average view
//! refresh time** per strategy. Sizes are laptop-scale; EXPERIMENTS.md
//! records how the measured *shapes* (who wins, by what factor, where the
//! crossovers sit) compare to the paper's cluster-scale numbers.

use linview_apps::gd::GradientDescentLR;
use linview_apps::general::{GeneralForm, Strategy};
use linview_apps::ols::{IncrOls, ReevalOls};
use linview_apps::powers::{IncrPowers, ReevalPowers};
use linview_apps::sums::{IncrSums, ReevalSums};
use linview_apps::IterModel;
use linview_compiler::CompileOptions;
use linview_dist::{dist_matmul, Cluster, DistMatrix};
use linview_expr::DeltaOptions;
use linview_matrix::{flops, GemmKernel, Matrix};
use linview_runtime::{
    DistBackend, Env, Evaluator, ExecBackend, FlushPolicy, IncrementalView, MaintenanceEngine,
    ThreadedBackend, UpdateStream,
};
use std::time::{Duration, Instant};

use crate::report::{fmt_bytes, fmt_duration, fmt_speedup, Table};
use crate::Config;

/// Mean wall time of `iters` invocations of `f`.
fn avg_time(iters: usize, mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters.max(1) as u32
}

/// Mean FLOPs of `iters` invocations of `f`.
fn avg_flops(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = flops::read();
    for _ in 0..iters {
        f();
    }
    (flops::read() - start) as f64 / iters.max(1) as f64
}

/// Fig. 3a — matrix powers `Aᵏ` across the five evaluation models,
/// REEVAL vs INCR average refresh time.
pub fn fig3a(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 3a - Matrix Powers A^k: evaluation models (n = {}, k = {})",
            cfg.n, cfg.k
        ),
        &["model", "REEVAL", "INCR", "speedup"],
    );
    let a = Matrix::random_spectral(cfg.n, 7, 0.9);
    for model in IterModel::paper_lineup() {
        let mut reeval = ReevalPowers::new(a.clone(), model, cfg.k).expect("reeval builds");
        let mut incr = IncrPowers::new(a.clone(), model, cfg.k).expect("incr builds");
        let mut s1 = UpdateStream::new(cfg.n, cfg.n, 0.01, 42);
        let re = avg_time(cfg.updates, || {
            reeval.apply(&s1.next_rank_one()).expect("reeval update")
        });
        let mut s2 = UpdateStream::new(cfg.n, cfg.n, 0.01, 42);
        let inc = avg_time(cfg.updates, || {
            incr.apply(&s2.next_rank_one()).expect("incr update")
        });
        t.row(vec![
            model.label(),
            fmt_duration(re),
            fmt_duration(inc),
            fmt_speedup(re, inc),
        ]);
    }
    t.note("paper: INCR wins in every model; EXP dominates (16-25x on Octave/Spark)");
    t
}

/// Fig. 3b — powers scalability in the dimension `n` (EXP model).
pub fn fig3b(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 3b - Matrix Powers A^k: scalability in n (k = {})",
            cfg.k
        ),
        &["n", "REEVAL-EXP", "INCR-EXP", "speedup"],
    );
    for &n in &[cfg.n / 2, cfg.n * 2 / 3, cfg.n, cfg.n * 4 / 3, cfg.n * 2] {
        let a = Matrix::random_spectral(n, 11, 0.9);
        let mut reeval =
            ReevalPowers::new(a.clone(), IterModel::Exponential, cfg.k).expect("reeval builds");
        let mut incr = IncrPowers::new(a, IterModel::Exponential, cfg.k).expect("incr builds");
        let mut s1 = UpdateStream::new(n, n, 0.01, 43);
        let re = avg_time(cfg.updates, || {
            reeval.apply(&s1.next_rank_one()).expect("reeval update")
        });
        let mut s2 = UpdateStream::new(n, n, 0.01, 43);
        let inc = avg_time(cfg.updates, || {
            incr.apply(&s2.next_rank_one()).expect("incr update")
        });
        t.row(vec![
            n.to_string(),
            fmt_duration(re),
            fmt_duration(inc),
            fmt_speedup(re, inc),
        ]);
    }
    t.note("paper: speedup grows with n (6.2x @ 4K to 31.3x @ 20K on Octave)");
    t
}

/// Fig. 3c — powers scalability in the iteration count `k` (EXP model).
pub fn fig3c(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 3c - Matrix Powers A^k: scalability in k (n = {})",
            cfg.n
        ),
        &["k", "REEVAL-EXP", "INCR-EXP", "speedup"],
    );
    let a = Matrix::random_spectral(cfg.n, 13, 0.9);
    for &k in &[4, 8, 16, 32, 64] {
        let mut reeval =
            ReevalPowers::new(a.clone(), IterModel::Exponential, k).expect("reeval builds");
        let mut incr = IncrPowers::new(a.clone(), IterModel::Exponential, k).expect("incr builds");
        let mut s1 = UpdateStream::new(cfg.n, cfg.n, 0.01, 44);
        let re = avg_time(cfg.updates, || {
            reeval.apply(&s1.next_rank_one()).expect("reeval update")
        });
        let mut s2 = UpdateStream::new(cfg.n, cfg.n, 0.01, 44);
        let inc = avg_time(cfg.updates, || {
            incr.apply(&s2.next_rank_one()).expect("incr update")
        });
        t.row(vec![
            k.to_string(),
            fmt_duration(re),
            fmt_duration(inc),
            fmt_speedup(re, inc),
        ]);
    }
    t.note("paper: gap narrows once delta rank (~k) becomes comparable to n");
    t
}

/// Fig. 3d — sums of matrix powers vs `n` (EXP model).
pub fn fig3d(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 3d - Sums of Powers I + A + ... + A^(k-1) (k = {})",
            cfg.k
        ),
        &["n", "REEVAL-EXP", "INCR-EXP", "speedup"],
    );
    for &n in &[cfg.n / 2, cfg.n, cfg.n * 2] {
        let a = Matrix::random_spectral(n, 17, 0.9);
        let mut reeval =
            ReevalSums::new(a.clone(), IterModel::Exponential, cfg.k).expect("reeval builds");
        let mut incr = IncrSums::new(a, IterModel::Exponential, cfg.k).expect("incr builds");
        let mut s1 = UpdateStream::new(n, n, 0.01, 45);
        let re = avg_time(cfg.updates, || {
            reeval.apply(&s1.next_rank_one()).expect("reeval update")
        });
        let mut s2 = UpdateStream::new(n, n, 0.01, 45);
        let inc = avg_time(cfg.updates, || {
            incr.apply(&s2.next_rank_one()).expect("incr update")
        });
        t.row(vec![
            n.to_string(),
            fmt_duration(re),
            fmt_duration(inc),
            fmt_speedup(re, inc),
        ]);
    }
    t.note("paper: same complexity class as matrix powers; speedup grows with n");
    t
}

/// Fig. 3e — OLS `(XᵀX)⁻¹XᵀY` vs `n`, REEVAL (LU) vs INCR
/// (Sherman–Morrison).
pub fn fig3e(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Fig 3e - Ordinary Least Squares (X'X)^-1 X'Y (p = 1)",
        &["n", "REEVAL", "INCR", "speedup"],
    );
    for &n in &[cfg.n / 2, cfg.n * 2 / 3, cfg.n, cfg.n * 4 / 3] {
        let x = Matrix::random_diag_dominant(n, 19);
        let y = Matrix::random_col(n, 20);
        let mut reeval = ReevalOls::new(x.clone(), y.clone()).expect("reeval builds");
        let mut incr = IncrOls::new(x, y).expect("incr builds");
        let mut s1 = UpdateStream::new(n, n, 0.001, 46);
        let re = avg_time(cfg.updates, || {
            reeval.apply(&s1.next_rank_one()).expect("reeval update")
        });
        let mut s2 = UpdateStream::new(n, n, 0.001, 46);
        let inc = avg_time(cfg.updates, || {
            incr.apply(&s2.next_rank_one()).expect("incr update")
        });
        t.row(vec![
            n.to_string(),
            fmt_duration(re),
            fmt_duration(inc),
            fmt_speedup(re, inc),
        ]);
    }
    t.note("paper: 3.6x @ 4K growing to 11.5x @ 20K — asymptotically different curves");
    t
}

/// Fig. 3f — distributed powers vs worker count on the simulated cluster:
/// refresh time and communication volume for REEVAL vs INCR.
pub fn fig3f(cfg: &Config) -> Table {
    let n = 240; // divisible by every grid side used
    let mut t = Table::new(
        format!("Fig 3f - Distributed A^4 vs cluster size (n = {n})"),
        &["workers", "REEVAL", "REEVAL comm", "INCR", "INCR comm"],
    );
    let a = Matrix::random_spectral(n, 23, 0.9);
    let program =
        linview_compiler::parse::parse_program("B := A * A; C := B * B;").expect("program parses");
    let mut cat = linview_expr::Catalog::new();
    cat.declare("A", n, n);

    for &workers in &[1usize, 4, 9, 16] {
        let grid = (workers as f64).sqrt() as usize;
        // REEVAL: per update, repartition A and run two distributed products.
        let cluster = Cluster::new(workers);
        let mut a_cur = a.clone();
        let mut s1 = UpdateStream::new(n, n, 0.01, 47);
        let re = avg_time(cfg.updates, || {
            let upd = s1.next_rank_one();
            upd.apply_to(&mut a_cur).expect("update applies");
            let da = DistMatrix::from_dense(&a_cur, grid).expect("partitions");
            let d2 = dist_matmul(&da, &da, &cluster).expect("A^2");
            let _d4 = dist_matmul(&d2, &d2, &cluster).expect("A^4");
        });
        let re_comm = cluster.comm().reset();

        // INCR: the same compiled triggers as the local path, executed on
        // the DistBackend — central delta-block evaluation, broadcast
        // factors, block-local partition updates.
        let backend = DistBackend::new(workers).expect("square worker count");
        let mut incr = IncrementalView::build_on(backend, &program, &[("A", a.clone())], &cat)
            .expect("incr builds");
        incr.reset_comm();
        let mut s2 = UpdateStream::new(n, n, 0.01, 47);
        let inc = avg_time(cfg.updates, || {
            incr.apply("A", &s2.next_rank_one()).expect("incr update")
        });
        let inc_comm = incr.reset_comm();
        t.row(vec![
            workers.to_string(),
            fmt_duration(re),
            fmt_bytes(re_comm.total_bytes() / cfg.updates as u64),
            fmt_duration(inc),
            fmt_bytes(inc_comm.total_bytes() / cfg.updates as u64),
        ]);
    }
    t.note("paper: INCR is far less sensitive to cluster size (10-26s flat vs shuffles)");
    t
}

/// Fig. 3g — general form with `B = 0` (`Tᵢ₊₁ = A·Tᵢ`), varying `p`:
/// REEVAL vs INCR vs HYBRID under the linear model.
pub fn fig3g(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 3g - T(i+1) = A T(i), LIN model, varying p (n = {}, k = {})",
            cfg.n, cfg.k
        ),
        &["p", "REEVAL-LIN", "INCR-LIN", "HYBRID-LIN"],
    );
    let a = Matrix::random_spectral(cfg.n, 29, 0.9);
    for &p in &[1usize, 8, 64] {
        let b = Matrix::zeros(cfg.n, p);
        let t0m = Matrix::random_uniform(cfg.n, p, 31);
        let mut cells = vec![p.to_string()];
        for strategy in [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid] {
            let mut gf = GeneralForm::new(
                a.clone(),
                b.clone(),
                t0m.clone(),
                IterModel::Linear,
                cfg.k,
                strategy,
            )
            .expect("builds");
            let mut s = UpdateStream::new(cfg.n, cfg.n, 0.01, 48);
            let d = avg_time(cfg.updates, || {
                gf.apply(&s.next_rank_one()).expect("update applies")
            });
            cells.push(fmt_duration(d));
        }
        t.row(cells);
    }
    t.note("paper: HYBRID wins at p = 1; INCR wins once p is large enough to justify factoring");
    t
}

/// Fig. 3h — gradient-descent linear regression `Tᵢ₊₁ = A·Tᵢ + B` across
/// the model lineup, REEVAL vs INCR (log-scale plot in the paper).
pub fn fig3h(cfg: &Config) -> Table {
    let m = cfg.n;
    let nf = cfg.n / 2;
    let p = 32;
    let mut t = Table::new(
        format!(
            "Fig 3h - Gradient descent LR (m = {m}, n = {nf}, p = {p}, k = {})",
            cfg.k
        ),
        &["model", "REEVAL", "INCR", "speedup"],
    );
    let x = Matrix::random_uniform(m, nf, 37).scale(0.3);
    let y = Matrix::random_uniform(m, p, 38);
    let theta0 = Matrix::zeros(nf, p);
    for model in IterModel::paper_lineup() {
        let mut row = vec![model.label()];
        let mut times = Vec::new();
        for strategy in [Strategy::Reeval, Strategy::Incremental] {
            let mut gd = GradientDescentLR::new(
                x.clone(),
                y.clone(),
                0.05,
                theta0.clone(),
                model,
                cfg.k,
                strategy,
            )
            .expect("builds");
            let mut s = UpdateStream::new(m, nf, 0.01, 49);
            let d = avg_time(cfg.updates, || {
                gd.apply(&s.next_rank_one()).expect("update applies")
            });
            times.push(d);
            row.push(fmt_duration(d));
        }
        row.push(fmt_speedup(times[0], times[1]));
        t.row(row);
    }
    t.note("paper: REEVAL best with LIN; INCR best with SKIP-4; overall INCR wins 36.7x");
    t
}

/// Table 2 — empirical verification of the asymptotic complexity table via
/// FLOP counters, plus the common-factor-extraction ablation (§4.3).
pub fn table2(cfg: &Config) -> Table {
    let n = cfg.n / 2;
    let k = cfg.k;
    let mut t = Table::new(
        format!("Table 2 - complexity shapes from FLOP counters (n = {n}, k = {k})"),
        &["quantity", "measured", "predicted"],
    );

    let measure_powers = |model: IterModel, k: usize, incremental: bool, factored: bool| -> f64 {
        let a = Matrix::random_spectral(n, 53, 0.9);
        let mut s = UpdateStream::new(n, n, 0.01, 50);
        if incremental {
            let opts = CompileOptions {
                update_rank: 1,
                delta: DeltaOptions {
                    factor_common: factored,
                },
            };
            let mut v = IncrPowers::new_with_options(a, model, k, &opts).expect("builds");
            avg_flops(cfg.updates, || v.apply(&s.next_rank_one()).expect("update"))
        } else {
            let mut v = ReevalPowers::new(a, model, k).expect("builds");
            avg_flops(cfg.updates, || v.apply(&s.next_rank_one()).expect("update"))
        }
    };

    // INCR-LIN scales ~k²: doubling k quadruples the work.
    let lin_k = measure_powers(IterModel::Linear, k, true, true);
    let lin_2k = measure_powers(IterModel::Linear, 2 * k, true, true);
    t.row(vec![
        "INCR-LIN flops ratio k->2k (n²k²)".into(),
        format!("{:.2}", lin_2k / lin_k),
        "~4".into(),
    ]);

    // INCR-EXP scales ~k: doubling k doubles the work.
    let exp_k = measure_powers(IterModel::Exponential, k, true, true);
    let exp_2k = measure_powers(IterModel::Exponential, 2 * k, true, true);
    t.row(vec![
        "INCR-EXP flops ratio k->2k (n²k)".into(),
        format!("{:.2}", exp_2k / exp_k),
        "~2".into(),
    ]);

    // REEVAL-EXP scales ~log k: k→2k adds one squaring.
    let re_k = measure_powers(IterModel::Exponential, k, false, true);
    let re_2k = measure_powers(IterModel::Exponential, 2 * k, false, true);
    t.row(vec![
        "REEVAL-EXP flops ratio k->2k (n³·log k)".into(),
        format!("{:.2}", re_2k / re_k),
        format!(
            "~{:.2}",
            (2.0 * k as f64).log2().ceil() / (k as f64).log2().ceil()
        ),
    ]);

    // REEVAL vs INCR at fixed (n, k): n³ vs n²k class separation.
    t.row(vec![
        "REEVAL-EXP / INCR-EXP flops at (n, k)".into(),
        format!("{:.1}", re_k / exp_k),
        format!("~n/k = {:.1} (class separation)", n as f64 / k as f64),
    ]);

    // Ablation: disabling §4.3 common-factor extraction blows ranks up
    // (2 per squaring → 3 per squaring ⇒ (3/2)^log2(k) more block width).
    let unfactored = measure_powers(IterModel::Exponential, k, true, false);
    t.row(vec![
        "ablation: unfactored / factored INCR-EXP flops".into(),
        format!("{:.2}", unfactored / exp_k),
        format!(
            "~{:.2} ((3/2)^log2 k rank blow-up, cost-weighted)",
            (1.5f64).powf((k as f64).log2())
        ),
    ]);
    t.note("ratios are the paper's Table 2 exponents observed through kernel FLOP counters");
    t
}

/// Table 3 — memory vs speedup for `A¹⁶`: REEVAL-EXP vs INCR-EXP.
pub fn table3(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!("Table 3 - memory vs speedup for A^{} (EXP model)", cfg.k),
        &[
            "n",
            "REEVAL mem",
            "INCR mem",
            "REEVAL time",
            "INCR time",
            "speedup/mem-cost",
        ],
    );
    for &n in &[cfg.n / 2, cfg.n, cfg.n * 2] {
        let a = Matrix::random_spectral(n, 59, 0.9);
        let mut reeval =
            ReevalPowers::new(a.clone(), IterModel::Exponential, cfg.k).expect("builds");
        let mut incr = IncrPowers::new(a, IterModel::Exponential, cfg.k).expect("builds");
        let mut s1 = UpdateStream::new(n, n, 0.01, 51);
        let re = avg_time(cfg.updates, || {
            reeval.apply(&s1.next_rank_one()).expect("update")
        });
        let mut s2 = UpdateStream::new(n, n, 0.01, 51);
        let inc = avg_time(cfg.updates, || {
            incr.apply(&s2.next_rank_one()).expect("update")
        });
        let speedup = re.as_secs_f64() / inc.as_secs_f64();
        let mem_cost = incr.memory_bytes() as f64 / reeval.memory_bytes() as f64;
        t.row(vec![
            n.to_string(),
            fmt_bytes(reeval.memory_bytes() as u64),
            fmt_bytes(incr.memory_bytes() as u64),
            fmt_duration(re),
            fmt_duration(inc),
            format!("{:.2}", speedup / mem_cost),
        ]);
    }
    t.note("paper: the benefit of investing memory grows with dimensionality (2.99 -> 16.0)");
    t
}

/// Table 4 — batched updates with Zipf-distributed row frequency:
/// INCR-EXP average refresh time per batch, across skew factors.
pub fn table4(cfg: &Config) -> Table {
    let batch = 64;
    let mut t = Table::new(
        format!(
            "Table 4 - batch updates (batch = {batch}, A^{}, n = {})",
            cfg.k, cfg.n
        ),
        &["zipf", "distinct rows", "INCR", "REEVAL"],
    );
    let a = Matrix::random_spectral(cfg.n, 61, 0.9);
    for &z in &[5.0, 4.0, 3.0, 2.0, 1.0, 0.0] {
        let mut incr = IncrPowers::new(a.clone(), IterModel::Exponential, cfg.k).expect("builds");
        let mut reeval =
            ReevalPowers::new(a.clone(), IterModel::Exponential, cfg.k).expect("builds");
        let mut s = UpdateStream::new(cfg.n, cfg.n, 0.01, 52);
        let batches: Vec<_> = (0..cfg.updates)
            .map(|_| s.next_batch_zipf(batch, z).expect("batch generates"))
            .collect();
        let ranks: usize = batches.iter().map(|b| b.rank()).sum::<usize>() / batches.len();
        let mut it = batches.iter();
        let inc = avg_time(batches.len(), || {
            incr.apply_batch(it.next().expect("batch available"))
                .expect("update")
        });
        let mut it2 = batches.iter();
        let re = avg_time(batches.len(), || {
            reeval
                .apply_batch(it2.next().expect("batch available"))
                .expect("update")
        });
        t.row(vec![
            format!("{z:.1}"),
            ranks.to_string(),
            fmt_duration(inc),
            fmt_duration(re),
        ]);
    }
    t.note("paper: INCR loses its advantage as updates become uniform (rank -> batch size)");
    t
}

/// MaintenanceEngine — batched multi-input ingestion across all three
/// backends side by side: a Zipf-skewed stream of rank-1 events over TWO
/// inputs, coalesced under a count policy and fired through the unified
/// `ExecBackend` path, with ONE joint trigger per final flush round. The
/// threaded backend's comm bytes are exact serialized-frame lengths; the
/// dist backend's are the metered model.
pub fn engine_batching(cfg: &Config) -> Table {
    let n = cfg.n;
    let events = (cfg.updates * 16).max(16);
    let zipf = 2.0;
    let mut t = Table::new(
        format!(
            "MaintenanceEngine - batched multi-input ingestion (n = {n}, {events} events, zipf = {zipf})"
        ),
        &[
            "backend",
            "batch",
            "firings",
            "fired rank",
            "joint saved",
            "refresh/event",
            "static flops/firing",
            "comm bytes",
        ],
    );
    let program =
        linview_compiler::parse::parse_program("C := A * B; D := C * C;").expect("program parses");
    let mut cat = linview_expr::Catalog::new();
    cat.declare("A", n, n);
    cat.declare("B", n, n);
    let a = Matrix::random_spectral(n, 33, 0.8);
    let b = Matrix::random_spectral(n, 34, 0.8);
    let inputs = [("A", a), ("B", b)];

    fn run<B: ExecBackend>(
        t: &mut Table,
        view: IncrementalView<B>,
        batch: usize,
        events: usize,
        zipf: f64,
        n: usize,
    ) {
        view.reset_comm();
        // The analyzer's per-firing FLOP estimate (mean over the program's
        // triggers, priced at the compiled update rank) — printed next to
        // the measured refresh so estimate-vs-actual drift is visible.
        let static_est = {
            let report = linview_compiler::analyze_program(
                view.trigger_program(),
                &linview_compiler::AnalyzeOptions::default(),
            );
            let triggers = report.triggers.len().max(1) as f64;
            report.triggers.iter().map(|t| t.cost.flops).sum::<f64>() / triggers
        };
        let mut engine = MaintenanceEngine::new(
            view,
            if batch <= 1 {
                FlushPolicy::Immediate
            } else {
                FlushPolicy::Count(batch)
            },
        );
        let mut stream = UpdateStream::new(n, n, 0.01, 35);
        for i in 0..events {
            let input = if i % 2 == 0 { "A" } else { "B" };
            engine
                .ingest(input, stream.next_rank_one_zipf(zipf))
                .expect("event ingests");
        }
        engine.flush_all().expect("final flush");
        let stats = engine.stats();
        let per_event = stats.refresh.mean_wall() * stats.firings as u32 / events.max(1) as u32;
        t.row(vec![
            engine.view().backend().name().into(),
            batch.to_string(),
            stats.firings.to_string(),
            stats.fired_rank.to_string(),
            stats.triggers_saved.to_string(),
            fmt_duration(per_event),
            format!("{static_est:.2e}"),
            fmt_bytes(engine.comm().total_bytes()),
        ]);
    }

    for &batch in &[1usize, 4, 16] {
        let view = IncrementalView::build(&program, &inputs, &cat).expect("local builds");
        run(&mut t, view, batch, events, zipf, n);
    }
    for &batch in &[1usize, 4, 16] {
        let backend = DistBackend::new(4).expect("square worker count");
        let view =
            IncrementalView::build_on(backend, &program, &inputs, &cat).expect("dist builds");
        run(&mut t, view, batch, events, zipf, n);
    }
    for &batch in &[1usize, 4, 16] {
        let backend = ThreadedBackend::new(4).expect("square worker count");
        let view =
            IncrementalView::build_on(backend, &program, &inputs, &cat).expect("threaded builds");
        run(&mut t, view, batch, events, zipf, n);
    }
    t.note(
        "skewed batches compact below their event count; dist meters the comm model, threaded \
         moves real frames",
    );
    t
}

/// Scheduler — DAG-staged trigger execution vs the sequential opt-out on
/// all three backends: stage structure, overlapped broadcasts, and the
/// wall-clock of one full update stream (`A⁸` powers, the widest shipped
/// trigger). Staged and sequential views are asserted bit-identical, so
/// the table measures pure scheduling effects.
pub fn scheduler(cfg: &Config) -> Table {
    use linview_runtime::ExecOptions;

    // Past the runtime's parallel threshold, so stage evaluation actually
    // fans out; divisible by the 2×2 grid of the 4-worker backends.
    let n = 256;
    let mut t = Table::new(
        format!(
            "Scheduler - DAG-staged vs sequential trigger execution (A^8, n = {n}, {} updates)",
            cfg.updates
        ),
        &[
            "backend",
            "mode",
            "stages/firing",
            "stmts/firing",
            "overlapped bcasts",
            "refresh",
            "static flops/firing",
        ],
    );
    let program = linview_compiler::parse::parse_program("B := A * A; C := B * B; D := C * C;")
        .expect("program parses");
    let mut cat = linview_expr::Catalog::new();
    cat.declare("A", n, n);
    let a = Matrix::random_spectral(n, 71, 0.8);
    let inputs = [("A", a)];

    fn run<B: ExecBackend>(
        t: &mut Table,
        mut view: IncrementalView<B>,
        sequential: bool,
        cfg: &Config,
        n: usize,
    ) -> Matrix {
        view.set_exec_options(ExecOptions {
            sequential,
            ..ExecOptions::default()
        });
        // Static per-firing FLOP estimate of the single A-trigger, for
        // drift comparison against the measured refresh column.
        let static_est = linview_compiler::analyze_program(
            view.trigger_program(),
            &linview_compiler::AnalyzeOptions::default(),
        )
        .triggers
        .iter()
        .map(|t| t.cost.flops)
        .sum::<f64>();
        let mut stream = UpdateStream::new(n, n, 0.01, 72);
        // Untimed warmup so the first-measured mode does not absorb the
        // process-wide cold start (page faults, frequency ramp).
        for _ in 0..2 {
            view.apply("A", &stream.next_rank_one()).expect("warmup");
        }
        view.reset_sched_stats();
        view.backend_mut().reset_sched();
        let time = avg_time(cfg.updates, || {
            view.apply("A", &stream.next_rank_one()).expect("update")
        });
        let sched = view.sched_stats();
        t.row(vec![
            view.backend().name().into(),
            if sequential { "sequential" } else { "staged" }.into(),
            (sched.stages / sched.firings).to_string(),
            (sched.stmts / sched.firings).to_string(),
            view.backend().sched().overlapped.to_string(),
            fmt_duration(time),
            format!("{static_est:.2e}"),
        ]);
        view.get("D").expect("D is maintained").clone()
    }

    for sequential in [false, true] {
        let view = IncrementalView::build(&program, &inputs, &cat).expect("local builds");
        let d_local = run(&mut t, view, sequential, cfg, n);
        let backend = DistBackend::new(4).expect("square worker count");
        let view =
            IncrementalView::build_on(backend, &program, &inputs, &cat).expect("dist builds");
        let d_dist = run(&mut t, view, sequential, cfg, n);
        let backend = ThreadedBackend::new(4).expect("square worker count");
        let view =
            IncrementalView::build_on(backend, &program, &inputs, &cat).expect("threaded builds");
        let d_threaded = run(&mut t, view, sequential, cfg, n);
        assert_eq!(
            d_local.max_abs_diff(&d_dist),
            0.0,
            "staged/sequential dist diverged from local"
        );
        assert_eq!(
            d_local.max_abs_diff(&d_threaded),
            0.0,
            "staged/sequential threaded diverged from local"
        );
    }
    t.note(
        "stages < stmts is the scheduler's parallelism; overlapped bcasts count frames that \
         left before the previous one was awaited — volume is identical in both modes",
    );
    t
}

/// GEMM — the tuned dense hot path in isolation: every [`GemmKernel`] at
/// several square sizes, GFLOP/s, and speedup over the serial blocked
/// kernel that used to be the hot path. The Criterion twin
/// (`benches/gemm_kernels.rs`) adds `--save-baseline` regression
/// tracking; this table is the harness-readable summary.
pub fn gemm(cfg: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "GEMM kernels - GFLOP/s by kernel and size (threads = {})",
            linview_matrix::gemm_threads()
        ),
        &["n", "kernel", "time", "GFLOP/s", "vs blocked-serial"],
    );
    for &n in &[cfg.n / 2, cfg.n, cfg.n * 2] {
        let a = Matrix::random_uniform(n, n, 91);
        let b = Matrix::random_uniform(n, n, 92);
        let ops = 2 * (n as u64).pow(3);
        let serial = avg_time(cfg.updates, || {
            a.matmul_serial(&b).expect("shapes conform");
        });
        t.row(vec![
            n.to_string(),
            "blocked-serial".into(),
            fmt_duration(serial),
            format!("{:.2}", flops::gflops(ops, serial)),
            "1.00x".into(),
        ]);
        for kernel in GemmKernel::ALL {
            let d = avg_time(cfg.updates, || {
                a.matmul_with(&b, kernel).expect("shapes conform");
            });
            t.row(vec![
                n.to_string(),
                kernel.label().into(),
                fmt_duration(d),
                format!("{:.2}", flops::gflops(ops, d)),
                fmt_speedup(serial, d),
            ]);
        }
    }
    // Skinny rank-k rows — the `n×k · k×n` shapes every ApplyDelta fold
    // produces. Each shape is measured twice: through the dedicated
    // rank-k fast path (the default dispatch) and with the fast path
    // disabled so the same product runs the general packed nest.
    for &n in &[512usize, 2048] {
        for &k in &[1usize, 4, 8, 16] {
            let a = Matrix::random_uniform(n, k, 93);
            let b = Matrix::random_uniform(k, n, 94);
            let ops = 2 * (n as u64) * (k as u64) * (n as u64);
            linview_matrix::force_general_nest(true);
            let nest = avg_time(cfg.updates, || {
                a.matmul_packed(&b).expect("shapes conform");
            });
            linview_matrix::force_general_nest(false);
            let fast = avg_time(cfg.updates, || {
                a.matmul_packed(&b).expect("shapes conform");
            });
            let shape = format!("{n}x{k}x{n}");
            t.row(vec![
                shape.clone(),
                "packed-nest".into(),
                fmt_duration(nest),
                format!("{:.2}", flops::gflops(ops, nest)),
                "1.00x".into(),
            ]);
            t.row(vec![
                shape,
                "rank-k".into(),
                fmt_duration(fast),
                format!("{:.2}", flops::gflops(ops, fast)),
                fmt_speedup(nest, fast),
            ]);
        }
    }
    // The fold itself (`X += U·Vᵀ`): the fused rank-k fold against the
    // GEMM-then-add two-step it replaces. This pair carries the >= 2x
    // acceptance bar — at n = 2048 the fold is memory-bound and skipping
    // the n×n delta temporary removes most of the traffic.
    for &k in &[1usize, 4, 8, 16] {
        let n = 2048;
        let u = Matrix::random_uniform(n, k, 95);
        let v = Matrix::random_uniform(n, k, 96);
        let ops = (2 * n * k * n + n * n) as u64;
        let mut x = Matrix::zeros(n, n);
        linview_matrix::force_general_nest(true);
        let nest = avg_time(cfg.updates, || {
            linview_matrix::fold_low_rank(&mut x, &u, &v, false).expect("shapes conform");
        });
        linview_matrix::force_general_nest(false);
        let fast = avg_time(cfg.updates, || {
            linview_matrix::fold_low_rank(&mut x, &u, &v, false).expect("shapes conform");
        });
        let shape = format!("fold {n}x{k}");
        t.row(vec![
            shape.clone(),
            "gemm-then-add".into(),
            fmt_duration(nest),
            format!("{:.2}", flops::gflops(ops, nest)),
            "1.00x".into(),
        ]);
        t.row(vec![
            shape,
            "rank-k fold".into(),
            fmt_duration(fast),
            format!("{:.2}", flops::gflops(ops, fast)),
            fmt_speedup(nest, fast),
        ]);
    }
    t.note(
        "packed is the default try_matmul path; acceptance bars: packed >= 2x blocked-serial \
         at n = 512, and the fused rank-k fold >= 2x gemm-then-add at n = 2048 for k <= 16 \
         (see the saved 'gemm' criterion baseline)",
    );
    t
}

/// Sparsity — sparse-aware delta execution and rank-compressed broadcasts
/// vs forced-dense execution, across density × n × backend. Each row
/// drives the same seeded batches through two views of the same backend —
/// auto (the runtime picks sparse folds and compressed frames) and
/// `sparse_folds: Some(false)` — asserts the maintained views are
/// bit-identical, and reports the fold-path split plus the broadcast bytes
/// compression saved.
pub fn sparsity(cfg: &Config) -> Table {
    use linview_runtime::{BatchUpdate, ExecOptions};

    let k = 4;
    let mut t = Table::new(
        format!("Sparsity - sparse folds + compressed broadcasts vs forced dense (rank {k})"),
        &[
            "backend",
            "n",
            "density",
            "auto",
            "forced dense",
            "speedup",
            "sparse/dense folds",
            "comm saved",
        ],
    );
    let program = linview_compiler::parse::parse_program("B := A * A;").expect("program parses");

    // A deterministic n×k factor keeping every `stride`-th entry (row-major)
    // of a seeded dense factor — density 1/stride, exactly reproducible.
    fn strided_factor(n: usize, k: usize, stride: usize, seed: u64) -> Matrix {
        let dense = Matrix::random_uniform(n, k, seed);
        let mut m = Matrix::zeros(n, k);
        for i in 0..n {
            for j in 0..k {
                if (i * k + j).is_multiple_of(stride) {
                    m.set(i, j, dense.get(i, j));
                }
            }
        }
        m
    }

    fn run<B: ExecBackend>(
        t: &mut Table,
        name: &str,
        make: impl Fn() -> IncrementalView<B>,
        n: usize,
        k: usize,
        stride: usize,
        updates: usize,
    ) {
        let batches: Vec<BatchUpdate> = (0..updates.max(1) as u64)
            .map(|s| {
                BatchUpdate::new(
                    strided_factor(n, k, stride, 100 + s),
                    Matrix::random_uniform(n, k, 200 + s),
                )
                .expect("factors conform")
            })
            .collect();
        let drive = |force_dense: bool| {
            let mut view = make();
            view.set_exec_options(ExecOptions {
                sparse_folds: if force_dense { Some(false) } else { None },
                ..Default::default()
            });
            view.reset_comm();
            let t0 = Instant::now();
            for b in &batches {
                view.apply_batch("A", b).expect("update applies");
            }
            let wall = t0.elapsed() / batches.len().max(1) as u32;
            let stats = view.sparse_stats();
            let bytes = view.comm().total_bytes();
            let maintained = view.get("B").expect("B is maintained").clone();
            (wall, stats, bytes, maintained)
        };
        let (auto_t, stats, auto_bytes, auto_b) = drive(false);
        let (dense_t, _, dense_bytes, dense_b) = drive(true);
        assert_eq!(
            auto_b.max_abs_diff(&dense_b),
            0.0,
            "sparse and forced-dense executions must stay bit-identical"
        );
        t.row(vec![
            name.into(),
            n.to_string(),
            format!("1/{stride}"),
            fmt_duration(auto_t),
            fmt_duration(dense_t),
            fmt_speedup(dense_t, auto_t),
            format!("{}/{}", stats.sparse_folds, stats.dense_folds),
            fmt_bytes(dense_bytes.saturating_sub(auto_bytes)),
        ]);
    }

    // Densities straddle both thresholds: 1/64 takes the sparse fold path
    // (below the 5% crossover) AND compressed frames; 1/16 folds dense but
    // still compresses on the wire; 1/1 is fully dense on both axes.
    for &n in &[cfg.n, cfg.n * 2] {
        for &stride in &[64usize, 16, 1] {
            let view = || IncrementalView::build(&program, &inputs(n), &cat(n)).expect("builds");
            run(&mut t, "local", view, n, k, stride, cfg.updates);
            let dist = || {
                IncrementalView::build_on(
                    DistBackend::new(4).expect("square worker count"),
                    &program,
                    &inputs(n),
                    &cat(n),
                )
                .expect("builds")
            };
            run(&mut t, "dist", dist, n, k, stride, cfg.updates);
            let threaded = || {
                IncrementalView::build_on(
                    ThreadedBackend::new(4).expect("square worker count"),
                    &program,
                    &inputs(n),
                    &cat(n),
                )
                .expect("builds")
            };
            run(&mut t, "threaded", threaded, n, k, stride, cfg.updates);
        }
    }
    fn cat(n: usize) -> linview_expr::Catalog {
        let mut cat = linview_expr::Catalog::new();
        cat.declare("A", n, n);
        cat
    }
    fn inputs(n: usize) -> [(&'static str, Matrix); 1] {
        [("A", Matrix::random_spectral(n, 17, 0.8))]
    }
    t.note(
        "auto == dense bit-for-bit by construction; below the 5% crossover the fold replays \
         stored entries, and triplet frames shrink broadcasts until density 1/2",
    );
    t
}

/// Ablations — the design-choice studies DESIGN.md calls out, as printable
/// tables (the Criterion versions live in `benches/ablation_*.rs`).
pub fn ablations(cfg: &Config) -> Vec<Table> {
    vec![
        ablation_factoring(cfg),
        ablation_recompress(cfg),
        ablation_inverse(cfg),
    ]
}

/// §4.3 common-factor extraction on/off: one `A⁸` trigger firing.
fn ablation_factoring(cfg: &Config) -> Table {
    use linview_compiler::{compile, Program};
    use linview_expr::{Catalog, Expr};
    use linview_runtime::fire_trigger;

    let n = cfg.n;
    let mut t = Table::new(
        format!("Ablation - common-factor extraction (A^8 trigger, n = {n})"),
        &["variant", "block ranks dB/dC/dD", "refresh", "flops"],
    );
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let mut prog = Program::new();
    prog.assign("B", Expr::var("A") * Expr::var("A"));
    prog.assign("C", Expr::var("B") * Expr::var("B"));
    prog.assign("D", Expr::var("C") * Expr::var("C"));
    let a = Matrix::random_spectral(n, 3, 0.8);
    let du = Matrix::random_col(n, 5).scale(0.01);
    let dv = Matrix::random_col(n, 6);
    let ev = Evaluator::new();
    let build_env = || {
        let b = a.try_matmul(&a).expect("square");
        let c = b.try_matmul(&b).expect("square");
        let d = c.try_matmul(&c).expect("square");
        let mut env = Env::new();
        env.bind("A", a.clone());
        env.bind("B", b);
        env.bind("C", c);
        env.bind("D", d);
        env
    };
    for (label, factored) in [("factored (§4.3)", true), ("unfactored", false)] {
        let opts = CompileOptions {
            update_rank: 1,
            delta: DeltaOptions {
                factor_common: factored,
            },
        };
        let tp = compile(&prog, &["A"], &cat, &opts).expect("compiles");
        let ranks = ["U_B", "U_C", "U_D"]
            .iter()
            .map(|v| tp.catalog.get(v).expect("declared").cols.to_string())
            .collect::<Vec<_>>()
            .join("/");
        let mut env = build_env();
        let time = avg_time(cfg.updates, || {
            fire_trigger(&mut env, &ev, &tp.triggers[0], &du, &dv).expect("fires")
        });
        let mut env2 = build_env();
        let fl = avg_flops(cfg.updates, || {
            fire_trigger(&mut env2, &ev, &tp.triggers[0], &du, &dv).expect("fires")
        });
        t.row(vec![
            label.into(),
            ranks,
            fmt_duration(time),
            format!("{:.2e}", fl),
        ]);
    }
    t.note("block ranks grow additively (2/4/8) with §4.3, multiplicatively (3/9/27) without");
    t
}

/// Numerical recompression on/off, generic vs redundant updates.
fn ablation_recompress(cfg: &Config) -> Table {
    use linview_compiler::parse::parse_program;
    use linview_expr::Catalog;
    use linview_runtime::{BatchUpdate, ExecOptions, IncrementalView, RankOneUpdate};

    let n = cfg.n;
    let mut t = Table::new(
        format!("Ablation - numerical delta recompression (A^4 views, n = {n})"),
        &["workload", "recompress", "refresh"],
    );
    let program = parse_program("B := A * A; C := B * B;").expect("parses");
    let mut cat = Catalog::new();
    cat.declare("A", n, n);
    let a = Matrix::random_spectral(n, 9, 0.8);
    let base = IncrementalView::build(&program, &[("A", a)], &cat).expect("builds");

    let generic = RankOneUpdate::row_update(n, n, n / 5, 0.01, 55);
    // Uncompacted batch of 8 updates over 2 distinct rows: true rank 2.
    let mut us = Vec::new();
    let mut vs = Vec::new();
    for i in 0..8u64 {
        let row = if i % 2 == 0 { 7 } else { 23 };
        let one = RankOneUpdate::row_update(n, n, row, 0.01, 100 + i);
        us.push(one.u);
        vs.push(one.v);
    }
    let urefs: Vec<&Matrix> = us.iter().collect();
    let vrefs: Vec<&Matrix> = vs.iter().collect();
    let batch = BatchUpdate::new(
        Matrix::hstack(&urefs).expect("stack"),
        Matrix::hstack(&vrefs).expect("stack"),
    )
    .expect("conforming factors");

    for (label, tol) in [("off", None), ("on (1e-10)", Some(1e-10))] {
        let exec = ExecOptions {
            recompress_tol: tol,
            ..ExecOptions::default()
        };
        let mut v1 = base.clone();
        v1.set_exec_options(exec);
        let time = avg_time(cfg.updates, || {
            v1.apply("A", &generic).expect("update");
        });
        t.row(vec![
            "generic rank-1".into(),
            label.into(),
            fmt_duration(time),
        ]);
        let mut v2 = base.clone();
        v2.set_exec_options(exec);
        let time = avg_time(cfg.updates, || {
            v2.apply_batch("A", &batch).expect("update");
        });
        t.row(vec![
            "redundant rank-8 (true rank 2)".into(),
            label.into(),
            fmt_duration(time),
        ]);
    }
    t.note("the pass is pure overhead on tight blocks, a 4x rank cut on redundant batches");
    t
}

/// Sherman–Morrison (k sequential steps) vs Woodbury (one rank-k solve).
fn ablation_inverse(cfg: &Config) -> Table {
    use linview_runtime::{sherman_morrison, woodbury};

    let n = cfg.n;
    let mut t = Table::new(
        format!("Ablation - inverse maintenance primitive (n = {n})"),
        &["k", "Sherman-Morrison", "Woodbury"],
    );
    let e = Matrix::random_diag_dominant(n, 1);
    let w = e.inverse().expect("invertible");
    for k in [1usize, 4, 16, 64] {
        let p = Matrix::random_uniform(n, k, 2).scale(0.01);
        let q = Matrix::random_uniform(n, k, 3).scale(0.01);
        let sm = avg_time(cfg.updates, || {
            sherman_morrison(&w, &p, &q).expect("nonsingular");
        });
        let wb = avg_time(cfg.updates, || {
            woodbury(&w, &p, &q).expect("nonsingular");
        });
        t.row(vec![k.to_string(), fmt_duration(sm), fmt_duration(wb)]);
    }
    t.note("both are O(kn²); Woodbury amortizes the k passes over W into two GEMMs + a k×k solve");
    t
}

/// Extension studies — the §3.1/§4.2 "future work" features, measured.
pub fn extensions(cfg: &Config) -> Vec<Table> {
    vec![ext_convergence(cfg), ext_expm(cfg), ext_warm_pagerank(cfg)]
}

/// Convergence-threshold maintenance: horizon behaviour and refresh cost.
fn ext_convergence(cfg: &Config) -> Table {
    use linview_apps::convergence::ConvergentIteration;

    let n = cfg.n;
    let mut t = Table::new(
        format!("Extension - convergence-threshold iteration (n = {n}, eps = 1e-9)"),
        &["event", "k (horizon)", "extended", "truncated", "refresh"],
    );
    let m = Matrix::random_stochastic(n, 11).transpose();
    let a = m.scale(0.85);
    let b = Matrix::filled(n, 1, 0.15 / n as f64);
    let mut t0 = Matrix::zeros(n, 1);
    t0.set(0, 0, 1.0);
    let mut it = ConvergentIteration::new(a, b, t0, 1e-9, 10_000).expect("converges");
    t.row(vec![
        "initial run".into(),
        it.iterations().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    let mut stream = UpdateStream::new(n, n, 0.002, 13);
    for i in 0..3 {
        let upd = stream.next_rank_one();
        let t1 = Instant::now();
        it.apply(&upd).expect("maintains");
        t.row(vec![
            format!("link update #{}", i + 1),
            it.iterations().to_string(),
            it.last_extension().to_string(),
            it.last_truncation().to_string(),
            fmt_duration(t1.elapsed()),
        ]);
    }
    t.note("§3.1's future work: the horizon adapts per update (footnote-3 extension / truncation)");
    t
}

/// Matrix exponential: INCR vs REEVAL refresh for the truncated series.
fn ext_expm(cfg: &Config) -> Table {
    use linview_apps::expm::{IncrExpm, ReevalExpm};

    let n = cfg.n;
    let k = 12;
    let mut t = Table::new(
        format!("Extension - matrix exponential, {k}-term Taylor (n = {n})"),
        &["strategy", "refresh", "speedup"],
    );
    let a = Matrix::random_spectral(n, 5, 0.6);
    let mut reeval = ReevalExpm::new(a.clone(), k).expect("builds");
    let mut incr = IncrExpm::new(a, k).expect("builds");
    let mut s1 = UpdateStream::new(n, n, 0.01, 21);
    let re = avg_time(cfg.updates, || {
        reeval.apply(&s1.next_rank_one()).expect("update")
    });
    let mut s2 = UpdateStream::new(n, n, 0.01, 21);
    let inc = avg_time(cfg.updates, || {
        incr.apply(&s2.next_rank_one()).expect("update")
    });
    t.row(vec!["REEVAL".into(), fmt_duration(re), "1.0x".into()]);
    t.row(vec!["INCR".into(), fmt_duration(inc), fmt_speedup(re, inc)]);
    t.note("§5.2's ODE motivation: exp(A)·x0 maintained under rank-1 updates to A");
    t
}

/// Warm-started sparse PageRank after one edge mutation.
fn ext_warm_pagerank(cfg: &Config) -> Table {
    use linview_sparse::{pagerank, pagerank_warm, Graph, PageRankOptions};

    let n = cfg.n * 4; // sparse scales further
    let mut t = Table::new(
        format!("Extension - warm-started sparse PageRank (n = {n}, tol = 1e-10)"),
        &["strategy", "iterations", "solve"],
    );
    let mut g = Graph::random(n, 6, 29);
    let opts = PageRankOptions {
        tol: 1e-10,
        max_iterations: 1000,
        ..PageRankOptions::default()
    };
    let before = pagerank(&g.transition(), &opts).expect("converges");
    g.insert_edge(3, n / 2).expect("new edge");
    let p_new = g.transition();
    let t1 = Instant::now();
    let cold = pagerank(&p_new, &opts).expect("converges");
    let cold_t = t1.elapsed();
    let t2 = Instant::now();
    let warm = pagerank_warm(&p_new, &opts, &before).expect("converges");
    let warm_t = t2.elapsed();
    t.row(vec![
        "cold (uniform start)".into(),
        cold.iterations().to_string(),
        fmt_duration(cold_t),
    ]);
    t.row(vec![
        "warm (previous scores)".into(),
        warm.iterations().to_string(),
        fmt_duration(warm_t),
    ]);
    t.note("after one edge flip the old solution is near the new fixed point");
    t
}

/// Serving layer: wait-free snapshot reads under live maintenance —
/// read throughput, staleness, latency percentiles, and what the reader
/// population costs the maintainer (readers x flush policy x backend).
pub fn serving(cfg: &Config) -> Table {
    use linview_runtime::{percentile_ns, ReaderPool, ReaderReport};

    let n = cfg.n;
    let events = (cfg.updates * 32).max(64);
    let mut t = Table::new(
        format!("Serving - wait-free snapshot reads under maintenance (n = {n}, {events} events)"),
        &[
            "backend",
            "policy",
            "readers",
            "maint wall",
            "writer cost",
            "reads/s",
            "stale max",
            "p50 read",
            "p99 read",
        ],
    );
    let program =
        linview_compiler::parse::parse_program("C := A * B; D := C * C;").expect("program");
    let mut cat = linview_expr::Catalog::new();
    cat.declare("A", n, n);
    cat.declare("B", n, n);
    let a = Matrix::random_spectral(n, 7, 0.8);
    let b = Matrix::random_spectral(n, 8, 0.8);
    let inputs = [("A", a), ("B", b)];

    // One grid cell: serve the view while ingesting `events` rank-1
    // updates. Returns the maintenance wall, the pool's whole lifetime
    // (reads are rated over it, since readers also run during warmup),
    // and the reader reports.
    fn run_cell<B: ExecBackend>(
        mut engine: MaintenanceEngine<B>,
        readers: usize,
        events: usize,
        n: usize,
    ) -> (Duration, Duration, Vec<ReaderReport>) {
        let handle = engine.enable_serving(1);
        let spawned = Instant::now();
        let pool = (readers > 0).then(|| ReaderPool::spawn(&handle, readers, &[]));
        if pool.is_some() {
            // Let the reader threads reach steady state so the measured
            // window prices contention, not thread spawn.
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut stream = UpdateStream::new(n, n, 0.01, 3131);
        let start = Instant::now();
        for i in 0..events {
            let input = if i % 2 == 0 { "A" } else { "B" };
            engine
                .ingest(input, stream.next_rank_one())
                .expect("event ingests");
        }
        engine.flush_all().expect("final flush");
        let wall = start.elapsed();
        let reports = pool.map(ReaderPool::stop).unwrap_or_default();
        (wall, spawned.elapsed(), reports)
    }

    let policies = [
        ("count", FlushPolicy::Count(4)),
        ("immediate", FlushPolicy::Immediate),
    ];
    for backend_name in ["local", "threaded"] {
        for (policy_name, policy) in policies {
            let mut baseline: Option<Duration> = None;
            for readers in [0usize, 2, 4] {
                let (wall, pool_wall, reports) = if backend_name == "threaded" {
                    let view = IncrementalView::build_on(
                        ThreadedBackend::with_cluster(Cluster::with_grid(2, 2)),
                        &program,
                        &inputs,
                        &cat,
                    )
                    .expect("build");
                    run_cell(MaintenanceEngine::new(view, policy), readers, events, n)
                } else {
                    let view = IncrementalView::build(&program, &inputs, &cat).expect("build");
                    run_cell(MaintenanceEngine::new(view, policy), readers, events, n)
                };
                let cost = match baseline {
                    None => {
                        baseline = Some(wall);
                        "1.00x (baseline)".to_string()
                    }
                    Some(base) => {
                        format!("{:.2}x", wall.as_secs_f64() / base.as_secs_f64().max(1e-12))
                    }
                };
                let mut total = ReaderReport {
                    epochs_monotone: true,
                    ..ReaderReport::default()
                };
                for r in &reports {
                    total.merge(r);
                }
                assert!(total.epochs_monotone, "serving epochs regressed");
                let reads_per_s = total.reads as f64 / pool_wall.as_secs_f64().max(1e-12);
                let p50 = percentile_ns(&mut total.latencies_ns, 50.0);
                let p99 = percentile_ns(&mut total.latencies_ns, 99.0);
                t.row(vec![
                    backend_name.into(),
                    policy_name.into(),
                    readers.to_string(),
                    fmt_duration(wall),
                    cost,
                    if readers == 0 {
                        "-".into()
                    } else {
                        format!("{reads_per_s:.2e}")
                    },
                    total.max_staleness.to_string(),
                    if readers == 0 {
                        "-".into()
                    } else {
                        format!("{p50} ns")
                    },
                    if readers == 0 {
                        "-".into()
                    } else {
                        format!("{p99} ns")
                    },
                ]);
            }
        }
    }
    t.note(
        "writer cost is maintenance wall vs the 0-reader baseline; closed-loop readers spin, so \
         on few-core hosts it prices CPU sharing, not blocking - the wait-free evidence is the \
         flat O(100 ns) read path and bounded staleness at every reader count",
    );
    t
}

/// Every experiment, in paper order.
pub fn all(cfg: &Config) -> Vec<Table> {
    vec![
        fig3a(cfg),
        fig3b(cfg),
        fig3c(cfg),
        fig3d(cfg),
        fig3e(cfg),
        fig3f(cfg),
        fig3g(cfg),
        fig3h(cfg),
        table2(cfg),
        table3(cfg),
        table4(cfg),
        engine_batching(cfg),
        scheduler(cfg),
        gemm(cfg),
        sparsity(cfg),
        serving(cfg),
    ]
}

/// Looks up an experiment by CLI name.
pub fn by_name(name: &str, cfg: &Config) -> Option<Vec<Table>> {
    Some(match name {
        "fig3a" => vec![fig3a(cfg)],
        "fig3b" => vec![fig3b(cfg)],
        "fig3c" => vec![fig3c(cfg)],
        "fig3d" => vec![fig3d(cfg)],
        "fig3e" => vec![fig3e(cfg)],
        "fig3f" => vec![fig3f(cfg)],
        "fig3g" => vec![fig3g(cfg)],
        "fig3h" => vec![fig3h(cfg)],
        "table2" => vec![table2(cfg)],
        "table3" => vec![table3(cfg)],
        "table4" => vec![table4(cfg)],
        "engine" => vec![engine_batching(cfg)],
        "scheduler" => vec![scheduler(cfg)],
        "gemm" => vec![gemm(cfg)],
        "sparsity" => vec![sparsity(cfg)],
        "serving" => vec![serving(cfg)],
        "ablations" => ablations(cfg),
        "extensions" => extensions(cfg),
        "all" => {
            let mut v = all(cfg);
            v.extend(ablations(cfg));
            v.extend(extensions(cfg));
            v
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests at quick scale: every experiment driver must run and
    // produce a fully populated table.
    #[test]
    fn every_experiment_runs_at_quick_scale() {
        let cfg = Config::quick();
        for name in [
            "fig3a",
            "fig3c",
            "fig3g",
            "table2",
            "table4",
            "engine",
            "scheduler",
            "gemm",
            "sparsity",
            "serving",
        ] {
            let tables = by_name(name, &cfg).expect("known experiment");
            for t in tables {
                assert!(!t.rows.is_empty(), "{name} produced no rows");
            }
        }
    }

    #[test]
    fn ablation_and_extension_tables_run_at_quick_scale() {
        let cfg = Config::quick();
        for name in ["ablations", "extensions"] {
            let tables = by_name(name, &cfg).expect("known experiment");
            assert_eq!(tables.len(), 3, "{name} table count");
            for t in tables {
                assert!(!t.rows.is_empty(), "{name} produced no rows");
            }
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(by_name("fig9z", &Config::quick()).is_none());
    }
}
