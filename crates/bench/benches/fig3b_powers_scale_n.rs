//! Fig. 3b — matrix powers scalability in the dimension `n` (EXP model):
//! REEVAL-EXP and INCR-EXP refresh time as `n` grows. The paper's claim is
//! asymptotic separation (`nᵞ` vs `n²`), i.e. the speedup column of the
//! harness grows with `n`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_apps::powers::{IncrPowers, ReevalPowers};
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const K: usize = 16;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b_powers_scale_n");
    group.sample_size(10);

    for n in [96usize, 144, 192, 288] {
        let a = Matrix::random_spectral(n, 11, 0.9);
        let upd = RankOneUpdate::row_update(n, n, n / 2, 0.01, 99);
        let reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, K).expect("builds");
        group.bench_with_input(BenchmarkId::new("REEVAL-EXP", n), &n, |b, _| {
            b.iter_batched_ref(
                || reeval.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
        let incr = IncrPowers::new(a, IterModel::Exponential, K).expect("builds");
        group.bench_with_input(BenchmarkId::new("INCR-EXP", n), &n, |b, _| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
