//! Ablation — §4.3 common-factor extraction.
//!
//! The compiler keeps delta block ranks small by extracting common factors
//! across monomials: with it, the blocks of `ΔB, ΔC, ΔD` in the `A⁸`
//! program have ranks 2, 4, 8; without it they grow 3, 9, 27
//! (multiplicatively per statement, as Example 4.4 warns). This bench
//! compiles the same program both ways and measures one trigger firing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linview_compiler::{compile, CompileOptions, Program};
use linview_expr::{Catalog, DeltaOptions, Expr};
use linview_matrix::Matrix;
use linview_runtime::{fire_trigger, Env, Evaluator};

const N: usize = 256;

fn build_env(a: &Matrix) -> Env {
    let b = a.try_matmul(a).expect("square");
    let c = b.try_matmul(&b).expect("square");
    let d = c.try_matmul(&c).expect("square");
    let mut env = Env::new();
    env.bind("A", a.clone());
    env.bind("B", b);
    env.bind("C", c);
    env.bind("D", d);
    env
}

fn bench(c: &mut Criterion) {
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    let mut prog = Program::new();
    prog.assign("B", Expr::var("A") * Expr::var("A"));
    prog.assign("C", Expr::var("B") * Expr::var("B"));
    prog.assign("D", Expr::var("C") * Expr::var("C"));

    let a = Matrix::random_spectral(N, 3, 0.8);
    let du = Matrix::random_col(N, 5).scale(0.01);
    let dv = Matrix::random_col(N, 6);
    let ev = Evaluator::new();

    let mut group = c.benchmark_group("ablation_factoring");
    group.sample_size(10);
    for (label, factor_common) in [("factored", true), ("unfactored", false)] {
        let opts = CompileOptions {
            delta: DeltaOptions { factor_common },
            ..CompileOptions::default()
        };
        let tp = compile(&prog, &["A"], &cat, &opts).expect("compiles");
        group.bench_function(label, |b| {
            b.iter_batched_ref(
                || build_env(&a),
                |env| fire_trigger(env, &ev, &tp.triggers[0], &du, &dv).expect("fires"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
