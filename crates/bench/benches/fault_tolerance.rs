//! Fault-tolerance overhead: what checkpoint/replay recovery costs.
//!
//! Three prices are measured on the streaming `A⁴` engine:
//!
//! * **checkpoint** — snapshotting the full maintained environment
//!   (`O(n²)` per view, paid every N firings);
//! * **wal-roundtrip** — encoding + decoding one logged firing record
//!   (`O(kn)` factor bytes, paid every firing);
//! * **recover** — the full crash path at varying log depths: restore the
//!   snapshot, re-install every partitioned view on the revived worker
//!   grid, and replay the logged firings.
//!
//! The point of the cadence knob is visible here: checkpoints cost `O(n²)`
//! but bound replay depth, while each replayed firing costs the same
//! `O(kn²)` broadcast fold it cost the first time.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_compiler::parse::parse_program;
use linview_dist::Cluster;
use linview_expr::Catalog;
use linview_matrix::Matrix;
use linview_runtime::{
    FiringRecord, FlushPolicy, IncrementalView, MaintenanceEngine, ThreadedBackend, UpdateStream,
};

const N: usize = 120;
const SEED: u64 = 606;

fn engine(every: usize) -> MaintenanceEngine<ThreadedBackend> {
    let program = parse_program("B := A * A; C := B * B;").expect("program");
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    let a = Matrix::random_spectral(N, 17, 0.9);
    let view = IncrementalView::build_on(
        ThreadedBackend::with_cluster(Cluster::with_grid(2, 2)),
        &program,
        &[("A", a)],
        &cat,
    )
    .expect("build");
    let mut engine = MaintenanceEngine::new(view, FlushPolicy::Immediate);
    engine.enable_checkpointing(every).expect("checkpointing");
    engine
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_tolerance");
    group.sample_size(10);

    // Snapshot cost: the O(n²) half of the cadence trade-off.
    let snap_engine = engine(1);
    group.bench_function("checkpoint", |b| {
        b.iter(|| snap_engine.view().checkpoint().expect("snapshot"))
    });

    // Per-firing log cost: encode + decode one O(kn) record.
    let u = Matrix::random_uniform(N, 4, 1).scale(0.01);
    let v = Matrix::random_uniform(N, 4, 2);
    let record = FiringRecord::single("A", u, v);
    group.bench_function("wal-roundtrip", |b| {
        b.iter(|| FiringRecord::decode(record.encode()).expect("decode"))
    });

    // The crash path itself, deeper logs costing proportionally more.
    for log_depth in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("recover", log_depth),
            &log_depth,
            |b, &depth| {
                b.iter_batched(
                    || {
                        // Cadence > depth keeps every firing in the log.
                        let mut engine = engine(depth + 1);
                        let mut stream = UpdateStream::new(N, N, 0.01, SEED);
                        for _ in 0..depth {
                            engine.ingest("A", stream.next_rank_one()).expect("ingest");
                        }
                        engine
                    },
                    |mut engine| {
                        engine.recover().expect("recover");
                        engine
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
