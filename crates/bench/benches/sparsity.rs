//! Sparse-aware ApplyDelta folds — the runtime's density-gated fold path
//! vs the dense GEMM fold it replaces.
//!
//! One bench per (n, density, path) triple, so `--save-baseline sparsity`
//! / `--baseline sparsity` track the crossover across commits. The
//! acceptance bar from the sparse-execution rewrite: `auto/n=4096/row` at
//! least 2× faster than `dense/n=4096/row` (a Zipf rank-1 row update is
//! 1/n dense, far below the 5% crossover). The `d=1/16` pairs sit above
//! the crossover and must stay at parity — both resolve to the same GEMM.

use criterion::{criterion_group, criterion_main, Criterion};
use linview_matrix::{fold_low_rank, Matrix};

/// A deterministic n×k factor keeping every `stride`-th entry (row-major)
/// of a seeded dense factor — density 1/stride.
fn strided_factor(n: usize, k: usize, stride: usize, seed: u64) -> Matrix {
    let dense = Matrix::random_uniform(n, k, seed);
    let mut m = Matrix::zeros(n, k);
    for i in 0..n {
        for j in 0..k {
            if (i * k + j).is_multiple_of(stride) {
                m.set(i, j, dense.get(i, j));
            }
        }
    }
    m
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsity");
    group.sample_size(10);
    for &n in &[1024usize, 4096] {
        // A Zipf-skewed rank-1 row update: u is one scaled basis column.
        let mut row_u = Matrix::zeros(n, 1);
        row_u.set(3, 0, 0.7);
        let cases = [
            ("row", row_u, Matrix::random_uniform(n, 1, 5)),
            (
                "d=1/64",
                strided_factor(n, 4, 64, 6),
                Matrix::random_uniform(n, 4, 7),
            ),
            (
                "d=1/16",
                strided_factor(n, 4, 16, 8),
                Matrix::random_uniform(n, 4, 9),
            ),
        ];
        for (label, u, v) in cases {
            let mut target = Matrix::random_uniform(n, n, 4);
            group.bench_function(format!("auto/n={n}/{label}"), |bch| {
                bch.iter(|| fold_low_rank(&mut target, &u, &v, true).expect("fold applies"))
            });
            group.bench_function(format!("dense/n={n}/{label}"), |bch| {
                bch.iter(|| fold_low_rank(&mut target, &u, &v, false).expect("fold applies"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
