//! Ablation — inverse-maintenance primitive: sequential Sherman–Morrison
//! (§4.1, the paper's choice) vs one rank-k Woodbury solve (the natural
//! §4.2 batch generalization).
//!
//! Both cost `O(kn²)`; Sherman–Morrison pays `k` passes over `W` while
//! Woodbury pays one `n×k` GEMM pair plus a `k×k` solve. The crossover as
//! batch rank grows is the design datum this ablation records.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linview_matrix::Matrix;
use linview_runtime::{sherman_morrison, woodbury};

const N: usize = 384;

fn bench(c: &mut Criterion) {
    let e = Matrix::random_diag_dominant(N, 1);
    let w = e.inverse().expect("diag dominant is invertible");

    let mut group = c.benchmark_group("ablation_inverse");
    group.sample_size(10);
    for k in [1usize, 4, 16, 64] {
        let p = Matrix::random_uniform(N, k, 2).scale(0.01);
        let q = Matrix::random_uniform(N, k, 3).scale(0.01);
        group.bench_function(format!("sherman_morrison/k={k}"), |b| {
            b.iter_batched_ref(
                || (),
                |_| sherman_morrison(&w, &p, &q).expect("nonsingular"),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("woodbury/k={k}"), |b| {
            b.iter_batched_ref(
                || (),
                |_| woodbury(&w, &p, &q).expect("nonsingular"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
