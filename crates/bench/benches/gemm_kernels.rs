//! GEMM kernel family — the dense hot path every other bench sits on.
//!
//! One bench per (kernel, size) pair plus the serial blocked reference,
//! so `--save-baseline gemm` / `--baseline gemm` track kernel regressions
//! across commits. The acceptance bar from the microkernel rewrite:
//! `packed/n=512` at least 2× faster than `blocked-serial/n=512`.

use criterion::{criterion_group, criterion_main, Criterion};
use linview_matrix::{GemmKernel, Matrix};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let a = Matrix::random_uniform(n, n, 1);
        let b = Matrix::random_uniform(n, n, 2);
        group.bench_function(format!("blocked-serial/n={n}"), |bch| {
            bch.iter(|| a.matmul_serial(&b).expect("shapes conform"))
        });
        for kernel in GemmKernel::ALL {
            group.bench_function(format!("{kernel}/n={n}"), |bch| {
                bch.iter(|| a.matmul_with(&b, kernel).expect("shapes conform"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
