//! GEMM kernel family — the dense hot path every other bench sits on.
//!
//! One bench per (kernel, size) pair plus the serial blocked reference,
//! so `--save-baseline gemm` / `--baseline gemm` track kernel regressions
//! across commits. Acceptance bars from the microkernel rewrites:
//! `packed/n=512` at least 2× faster than `blocked-serial/n=512`, and
//! every `rank-k-fold/n=2048,k=*` row at least 2× faster than its
//! `rank-k-fold-nest` twin (the same `X += U·Vᵀ` fold forced through
//! GEMM-then-add on the general packed nest).

use criterion::{criterion_group, criterion_main, Criterion};
use linview_matrix::{fold_low_rank, force_general_nest, GemmKernel, Matrix};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        let a = Matrix::random_uniform(n, n, 1);
        let b = Matrix::random_uniform(n, n, 2);
        group.bench_function(format!("blocked-serial/n={n}"), |bch| {
            bch.iter(|| a.matmul_serial(&b).expect("shapes conform"))
        });
        for kernel in GemmKernel::ALL {
            group.bench_function(format!("{kernel}/n={n}"), |bch| {
                bch.iter(|| a.matmul_with(&b, kernel).expect("shapes conform"))
            });
        }
    }
    // Skinny rank-k shapes (`n×k · k×n`) — the delta-fold hot path. Each
    // shape runs through the dedicated rank-k kernel and, as a regression
    // reference, through the general packed nest with the fast path
    // disabled.
    for &n in &[512usize, 2048] {
        for &k in &[1usize, 4, 8, 16] {
            let a = Matrix::random_uniform(n, k, 3);
            let b = Matrix::random_uniform(k, n, 4);
            group.bench_function(format!("rank-k/n={n},k={k}"), |bch| {
                bch.iter(|| a.matmul_packed(&b).expect("shapes conform"))
            });
            group.bench_function(format!("rank-k-nest/n={n},k={k}"), |bch| {
                force_general_nest(true);
                bch.iter(|| a.matmul_packed(&b).expect("shapes conform"));
                force_general_nest(false);
            });
        }
    }
    // The fold itself (`X += U·Vᵀ`) at the paper's view scale — the
    // fused rank-k fold against the GEMM-then-add it replaces. This pair
    // carries the ≥ 2× acceptance bar.
    for &k in &[1usize, 4, 8, 16] {
        let n = 2048;
        let u = Matrix::random_uniform(n, k, 5);
        let v = Matrix::random_uniform(n, k, 6);
        let mut x = Matrix::zeros(n, n);
        group.bench_function(format!("rank-k-fold/n={n},k={k}"), |bch| {
            bch.iter(|| fold_low_rank(&mut x, &u, &v, false).expect("shapes conform"))
        });
        group.bench_function(format!("rank-k-fold-nest/n={n},k={k}"), |bch| {
            force_general_nest(true);
            bch.iter(|| fold_low_rank(&mut x, &u, &v, false).expect("shapes conform"));
            force_general_nest(false);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
