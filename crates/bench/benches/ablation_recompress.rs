//! Ablation — numerical delta recompression (the extension to §4.3).
//!
//! The paper's common-factor extraction is syntactic; the runtime's
//! optional SVD-based recompression pass additionally collapses *numerical*
//! rank deficiency. Two regimes:
//!
//! * `generic/…` — a generic rank-1 row update: every block is already
//!   numerically tight, so the pass is pure overhead (it should lose, but
//!   only by the small `O((n+m)k²)` inspection cost).
//! * `redundant/…` — an uncompacted batch of 8 updates hitting 2 distinct
//!   rows (true rank 2, syntactic rank 8): the pass collapses block ranks
//!   4× and should win.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linview_compiler::parse::parse_program;
use linview_expr::Catalog;
use linview_matrix::Matrix;
use linview_runtime::{ExecOptions, IncrementalView, RankOneUpdate};

const N: usize = 256;

fn redundant_batch() -> (Matrix, Matrix) {
    // 8 rank-1 row updates over only 2 distinct rows, deliberately NOT
    // compacted (the ingest path may not know rows repeat).
    let mut us = Vec::new();
    let mut vs = Vec::new();
    for i in 0..8u64 {
        let row = if i % 2 == 0 { 7 } else { 23 };
        let one = RankOneUpdate::row_update(N, N, row, 0.01, 100 + i);
        us.push(one.u);
        vs.push(one.v);
    }
    let urefs: Vec<&Matrix> = us.iter().collect();
    let vrefs: Vec<&Matrix> = vs.iter().collect();
    (
        Matrix::hstack(&urefs).expect("same height"),
        Matrix::hstack(&vrefs).expect("same height"),
    )
}

fn bench(c: &mut Criterion) {
    let program = parse_program("B := A * A; C := B * B;").expect("parses");
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    let a = Matrix::random_spectral(N, 9, 0.8);
    let base = IncrementalView::build(&program, &[("A", a)], &cat).expect("builds");

    let generic = RankOneUpdate::row_update(N, N, 11, 0.01, 55);
    let (bu, bv) = redundant_batch();

    let mut group = c.benchmark_group("ablation_recompress");
    group.sample_size(10);
    for (label, tol) in [("off", None), ("on", Some(1e-10))] {
        let exec = ExecOptions {
            recompress_tol: tol,
            ..ExecOptions::default()
        };
        group.bench_function(format!("generic/{label}"), |b| {
            b.iter_batched_ref(
                || {
                    let mut v = base.clone();
                    v.set_exec_options(exec);
                    v
                },
                |v| v.apply("A", &generic).expect("update"),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("redundant/{label}"), |b| {
            b.iter_batched_ref(
                || {
                    let mut v = base.clone();
                    v.set_exec_options(exec);
                    v
                },
                |v| {
                    let batch = linview_runtime::BatchUpdate::new(bu.clone(), bv.clone())
                        .expect("conforming factors");
                    v.apply_batch("A", &batch).expect("update")
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
