//! Table 2 — the complexity ablations, measured as wall time: (a) the
//! common-factor-extraction toggle of §4.3 (factored vs unfactored delta
//! compilation), and (b) the chain-ordering toggle in the evaluator
//! (skinny-first vs as-written association) that separates `O(kn²)` from
//! the `O(nᵞ)` avalanche.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linview_apps::powers::IncrPowers;
use linview_apps::IterModel;
use linview_compiler::CompileOptions;
use linview_expr::{DeltaOptions, Expr};
use linview_matrix::Matrix;
use linview_runtime::{Env, Evaluator, RankOneUpdate};

const N: usize = 160;
const K: usize = 16;

fn bench(c: &mut Criterion) {
    let a = Matrix::random_spectral(N, 53, 0.9);
    let upd = RankOneUpdate::row_update(N, N, N / 3, 0.01, 99);
    let mut group = c.benchmark_group("table2_complexity");
    group.sample_size(10);

    // (a) §4.3 ablation: factored vs unfactored trigger compilation.
    for (label, factored) in [("factored", true), ("unfactored", false)] {
        let opts = CompileOptions {
            update_rank: 1,
            delta: DeltaOptions {
                factor_common: factored,
            },
        };
        let incr = IncrPowers::new_with_options(a.clone(), IterModel::Exponential, K, &opts)
            .expect("builds");
        group.bench_function(format!("INCR-EXP/{label}"), |b| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
    }

    // (b) chain-ordering ablation: evaluate U (Vᵀ B) vs ((U Vᵀ) B).
    let mut env = Env::new();
    env.bind("B", a.clone());
    env.bind("U", Matrix::random_uniform(N, 2, 1));
    env.bind("V", Matrix::random_uniform(N, 2, 2));
    let expr = Expr::var("U") * Expr::var("V").t() * Expr::var("B");
    for (label, opt) in [("chain-opt", true), ("as-written", false)] {
        let ev = Evaluator::with_chain_opt(opt);
        group.bench_function(format!("delta-product/{label}"), |b| {
            b.iter(|| ev.eval(&expr, &env).expect("evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
