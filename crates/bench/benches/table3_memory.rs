//! Table 3 — the speedup side of the memory/speed trade-off: REEVAL-EXP vs
//! INCR-EXP refresh time for `A¹⁶` at growing `n` (the memory numbers are
//! reported by the harness, which can inspect the maintainers' state).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_apps::powers::{IncrPowers, ReevalPowers};
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const K: usize = 16;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_memory");
    group.sample_size(10);

    for n in [96usize, 192, 288] {
        let a = Matrix::random_spectral(n, 59, 0.9);
        let upd = RankOneUpdate::row_update(n, n, n / 2, 0.01, 99);
        let reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, K).expect("builds");
        let incr = IncrPowers::new(a, IterModel::Exponential, K).expect("builds");
        // Print the memory ratio once per size (criterion reports time).
        println!(
            "table3_memory n={n}: REEVAL {} B, INCR {} B ({:.2}x overhead)",
            reeval.memory_bytes(),
            incr.memory_bytes(),
            incr.memory_bytes() as f64 / reeval.memory_bytes() as f64
        );
        group.bench_with_input(BenchmarkId::new("REEVAL-EXP", n), &n, |b, _| {
            b.iter_batched_ref(
                || reeval.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("INCR-EXP", n), &n, |b, _| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
