//! Fig. 3d — sums of matrix powers `I + A + … + Aᵏ⁻¹` vs `n` (EXP model):
//! the computation shares the powers' complexity class, so REEVAL/INCR
//! separate the same way.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_apps::sums::{IncrSums, ReevalSums};
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const K: usize = 16;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3d_sums_of_powers");
    group.sample_size(10);

    for n in [96usize, 192, 288] {
        let a = Matrix::random_spectral(n, 17, 0.9);
        let upd = RankOneUpdate::row_update(n, n, n / 2, 0.01, 99);
        let reeval = ReevalSums::new(a.clone(), IterModel::Exponential, K).expect("builds");
        group.bench_with_input(BenchmarkId::new("REEVAL-EXP", n), &n, |b, _| {
            b.iter_batched_ref(
                || reeval.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
        let incr = IncrSums::new(a, IterModel::Exponential, K).expect("builds");
        group.bench_with_input(BenchmarkId::new("INCR-EXP", n), &n, |b, _| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
