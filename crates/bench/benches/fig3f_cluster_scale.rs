//! Fig. 3f — distributed `A⁴` on the simulated cluster, varying the worker
//! count: distributed re-evaluation (block shuffles + block products)
//! against central trigger evaluation + broadcast low-rank updates of the
//! partitioned views.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_dist::{dist_add_low_rank, dist_matmul, Cluster, DistMatrix};
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const N: usize = 240;

fn bench(c: &mut Criterion) {
    let a = Matrix::random_spectral(N, 23, 0.9);
    let upd = RankOneUpdate::row_update(N, N, N / 5, 0.01, 99);
    let mut group = c.benchmark_group("fig3f_cluster_scale");
    group.sample_size(10);

    for workers in [1usize, 4, 16] {
        let grid = (workers as f64).sqrt() as usize;
        let cluster = Cluster::new(workers);
        // REEVAL: two distributed squarings per refresh.
        group.bench_with_input(BenchmarkId::new("REEVAL-EXP", workers), &workers, |b, _| {
            b.iter_batched(
                || {
                    let mut a2 = a.clone();
                    upd.apply_to(&mut a2).expect("update");
                    DistMatrix::from_dense(&a2, grid).expect("partitions")
                },
                |da| {
                    let d2 = dist_matmul(&da, &da, &cluster).expect("A^2");
                    dist_matmul(&d2, &d2, &cluster).expect("A^4")
                },
                BatchSize::LargeInput,
            )
        });
        // INCR: rank-4 broadcast update of the partitioned A⁴ view
        // (the factor width the trigger produces for k = 4).
        let a4 = {
            let a2 = a.try_matmul(&a).expect("A^2");
            a2.try_matmul(&a2).expect("A^4")
        };
        let dc = DistMatrix::from_dense(&a4, grid).expect("partitions");
        let u = Matrix::random_uniform(N, 4, 5).scale(0.01);
        let v = Matrix::random_uniform(N, 4, 6);
        group.bench_with_input(BenchmarkId::new("INCR-EXP", workers), &workers, |b, _| {
            b.iter_batched(
                || dc.clone(),
                |mut view| {
                    dist_add_low_rank(&mut view, &u, &v, &cluster).expect("low-rank update");
                    view
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
