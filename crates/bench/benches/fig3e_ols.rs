//! Fig. 3e — Ordinary Least Squares `(XᵀX)⁻¹XᵀY` vs `n`, `p = 1`:
//! LU re-inversion (REEVAL) against the compiled Sherman–Morrison trigger
//! (INCR). The paper's asymptotics: `O(nᵞ + mn²)` vs `O(n² + mn)`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_apps::ols::{IncrOls, ReevalOls};
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3e_ols");
    group.sample_size(10);

    for n in [96usize, 144, 192, 256] {
        let x = Matrix::random_diag_dominant(n, 19);
        let y = Matrix::random_col(n, 20);
        let upd = RankOneUpdate::row_update(n, n, n / 3, 0.001, 99);
        let reeval = ReevalOls::new(x.clone(), y.clone()).expect("builds");
        group.bench_with_input(BenchmarkId::new("REEVAL", n), &n, |b, _| {
            b.iter_batched_ref(
                || reeval.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
        let incr = IncrOls::new(x, y).expect("builds");
        group.bench_with_input(BenchmarkId::new("INCR", n), &n, |b, _| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
