//! Fig. 3h — gradient-descent linear regression `Tᵢ₊₁ = A·Tᵢ + B`
//! (`A = I − λXᵀX`, `B = λXᵀY`): the five iterative models under REEVAL
//! and INCR. Each refresh handles a rank-1 observation update that induces
//! a rank-2 `ΔA` plus a rank-1 `ΔB`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linview_apps::gd::GradientDescentLR;
use linview_apps::general::Strategy;
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const M: usize = 192;
const NF: usize = 96;
const P: usize = 32;
const K: usize = 16;

fn bench(c: &mut Criterion) {
    let x = Matrix::random_uniform(M, NF, 37).scale(0.3);
    let y = Matrix::random_uniform(M, P, 38);
    let theta0 = Matrix::zeros(NF, P);
    let upd = RankOneUpdate::row_update(M, NF, M / 4, 0.01, 99);
    let mut group = c.benchmark_group("fig3h_gradient_descent");
    group.sample_size(10);

    for model in IterModel::paper_lineup() {
        for strategy in [Strategy::Reeval, Strategy::Incremental] {
            let gd = GradientDescentLR::new(
                x.clone(),
                y.clone(),
                0.05,
                theta0.clone(),
                model,
                K,
                strategy,
            )
            .expect("builds");
            group.bench_function(format!("{}/{}", strategy.label(), model.label()), |b| {
                b.iter_batched_ref(
                    || gd.clone(),
                    |v| v.apply(&upd).expect("update"),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
