//! Serving-layer costs: what wait-free snapshot reads price in.
//!
//! Three numbers bound the design:
//!
//! * **publish** — building and swapping one epoch-stamped
//!   [`ViewSnapshot`] (`O(n²)` per view, paid by the maintainer every
//!   `publish_every` rounds);
//! * **acquire** — one reader taking the current snapshot (`Arc` clone
//!   under a read lock; this is the wait-free hot path);
//! * **maintain** — the full update stream with 0 vs 4 closed-loop
//!   readers hammering the handle, so reader-induced writer slowdown
//!   shows up as a regression between the two ids.
//!
//! `--save-baseline serve` / `--baseline serve` track all three across
//! commits; `baselines/serve.tsv` records the committed reference run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use linview_compiler::parse::parse_program;
use linview_dist::Cluster;
use linview_expr::Catalog;
use linview_matrix::Matrix;
use linview_runtime::{
    FlushPolicy, IncrementalView, MaintenanceEngine, ReaderPool, ThreadedBackend, UpdateStream,
};

const N: usize = 120;
const SEED: u64 = 727;
const EVENTS: usize = 16;

fn engine() -> MaintenanceEngine<ThreadedBackend> {
    let program = parse_program("C := A * B; D := C * C;").expect("program");
    let mut cat = Catalog::new();
    cat.declare("A", N, N);
    cat.declare("B", N, N);
    let a = Matrix::random_spectral(N, 7, 0.8);
    let b = Matrix::random_spectral(N, 8, 0.8);
    let view = IncrementalView::build_on(
        ThreadedBackend::with_cluster(Cluster::with_grid(2, 2)),
        &program,
        &[("A", a), ("B", b)],
        &cat,
    )
    .expect("build");
    MaintenanceEngine::new(view, FlushPolicy::Count(4))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Publication cost: capture every maintained view + swap the Arc.
    let mut publishing = engine();
    publishing.enable_serving(1);
    group.bench_function("publish", |b| {
        b.iter(|| black_box(publishing.publish_snapshot()))
    });

    // Reader hot path: acquire the current snapshot and read one cell.
    let handle = publishing.serving_handle().expect("serving on");
    group.bench_function("acquire", |b| {
        b.iter(|| {
            let snap = handle.snapshot();
            black_box(snap.point("D", 0, 0))
        })
    });

    // Maintenance throughput with and without a reader population: the
    // two ids should track each other — snapshot reads are wait-free.
    for readers in [0usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("maintain", format!("readers={readers}")),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    let mut engine = engine();
                    let handle = engine.enable_serving(1);
                    let pool = (readers > 0).then(|| ReaderPool::spawn(&handle, readers, &[]));
                    let mut stream = UpdateStream::new(N, N, 0.01, SEED);
                    for i in 0..EVENTS {
                        let input = if i % 2 == 0 { "A" } else { "B" };
                        engine
                            .ingest(input, stream.next_rank_one())
                            .expect("ingest");
                    }
                    engine.flush_all().expect("flush");
                    if let Some(pool) = pool {
                        black_box(pool.stop());
                    }
                    engine
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
