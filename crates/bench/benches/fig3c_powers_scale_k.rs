//! Fig. 3c — matrix powers scalability in the iteration count `k`
//! (EXP model, fixed `n`). The incremental delta rank grows with `k`, so
//! the INCR advantage narrows as `k` approaches `n` — the same trend the
//! paper observes at k = 256 on Octave.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_apps::powers::{IncrPowers, ReevalPowers};
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const N: usize = 160;

fn bench(c: &mut Criterion) {
    let a = Matrix::random_spectral(N, 13, 0.9);
    let upd = RankOneUpdate::row_update(N, N, N / 4, 0.01, 99);
    let mut group = c.benchmark_group("fig3c_powers_scale_k");
    group.sample_size(10);

    for k in [4usize, 8, 16, 32, 64] {
        let reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, k).expect("builds");
        group.bench_with_input(BenchmarkId::new("REEVAL-EXP", k), &k, |b, _| {
            b.iter_batched_ref(
                || reeval.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
        let incr = IncrPowers::new(a.clone(), IterModel::Exponential, k).expect("builds");
        group.bench_with_input(BenchmarkId::new("INCR-EXP", k), &k, |b, _| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
