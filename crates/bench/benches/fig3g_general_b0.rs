//! Fig. 3g — `Tᵢ₊₁ = A·Tᵢ` (B = 0), linear model, varying the view width
//! `p`: REEVAL vs INCR vs HYBRID. The crossover at small `p` is the point
//! of the hybrid strategy (§5.3).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_apps::general::{GeneralForm, Strategy};
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const N: usize = 192;
const K: usize = 16;

fn bench(c: &mut Criterion) {
    let a = Matrix::random_spectral(N, 29, 0.9);
    let upd = RankOneUpdate::row_update(N, N, N / 3, 0.01, 99);
    let mut group = c.benchmark_group("fig3g_general_b0");
    group.sample_size(10);

    for p in [1usize, 8, 64] {
        let b = Matrix::zeros(N, p);
        let t0 = Matrix::random_uniform(N, p, 31);
        for strategy in [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid] {
            let gf = GeneralForm::new(
                a.clone(),
                b.clone(),
                t0.clone(),
                IterModel::Linear,
                K,
                strategy,
            )
            .expect("builds");
            group.bench_with_input(
                BenchmarkId::new(format!("{}-LIN", strategy.label()), p),
                &p,
                |bch, _| {
                    bch.iter_batched_ref(
                        || gf.clone(),
                        |v| v.apply(&upd).expect("update"),
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
