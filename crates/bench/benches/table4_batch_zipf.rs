//! Table 4 — batched updates under Zipf-distributed row skew: INCR-EXP
//! refresh time per batch of 64 row updates, for skew factors 0–5. As skew
//! decreases the effective batch rank approaches the batch size and the
//! incremental advantage evaporates.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use linview_apps::powers::{IncrPowers, ReevalPowers};
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::UpdateStream;

const N: usize = 160;
const K: usize = 16;
const BATCH: usize = 64;

fn bench(c: &mut Criterion) {
    let a = Matrix::random_spectral(N, 61, 0.9);
    let mut group = c.benchmark_group("table4_batch_zipf");
    group.sample_size(10);

    for z in [5.0f64, 3.0, 1.0, 0.0] {
        let mut stream = UpdateStream::new(N, N, 0.01, 52);
        let batch = stream.next_batch_zipf(BATCH, z).expect("batch generates");
        println!(
            "table4_batch_zipf z={z}: effective rank {} of {BATCH}",
            batch.rank()
        );
        let incr = IncrPowers::new(a.clone(), IterModel::Exponential, K).expect("builds");
        group.bench_with_input(BenchmarkId::new("INCR-EXP", format!("z{z}")), &z, |b, _| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply_batch(&batch).expect("update"),
                BatchSize::LargeInput,
            )
        });
        let reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, K).expect("builds");
        group.bench_with_input(
            BenchmarkId::new("REEVAL-EXP", format!("z{z}")),
            &z,
            |b, _| {
                b.iter_batched_ref(
                    || reeval.clone(),
                    |v| v.apply_batch(&batch).expect("update"),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
