//! Fig. 3a — matrix powers `Aᵏ`: REEVAL vs INCR across the five evaluation
//! models (LIN, SKIP-2, SKIP-4, SKIP-8, EXP). One Criterion benchmark per
//! (model, strategy) pair; the measured quantity is one view refresh for a
//! rank-1 row update.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use linview_apps::powers::{IncrPowers, ReevalPowers};
use linview_apps::IterModel;
use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

const N: usize = 192;
const K: usize = 16;

fn bench(c: &mut Criterion) {
    let a = Matrix::random_spectral(N, 7, 0.9);
    let upd = RankOneUpdate::row_update(N, N, N / 3, 0.01, 99);
    let mut group = c.benchmark_group("fig3a_powers_models");
    group.sample_size(10);

    for model in IterModel::paper_lineup() {
        let reeval = ReevalPowers::new(a.clone(), model, K).expect("builds");
        group.bench_function(format!("REEVAL/{}", model.label()), |b| {
            b.iter_batched_ref(
                || reeval.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
        let incr = IncrPowers::new(a.clone(), model, K).expect("builds");
        group.bench_function(format!("INCR/{}", model.label()), |b| {
            b.iter_batched_ref(
                || incr.clone(),
                |v| v.apply(&upd).expect("update"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
