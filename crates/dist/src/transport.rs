//! Real message-passing transport: long-lived workers, byte frames.
//!
//! Everything else in this crate *meters* communication; this module
//! actually **moves** it. The coordinator side is [`FramePool`], generic
//! over a [`Transport`] that carries opaque [`Bytes`] frames to one worker
//! per grid partition. Two transports exist:
//!
//! * [`ChannelTransport`] — one OS thread per partition inside this
//!   process, connected by bounded `mpsc` channels ([`WorkerPool`] is the
//!   pool over it). The channel bound applies back-pressure: a coordinator
//!   that outruns its workers blocks instead of buffering unboundedly.
//! * [`SocketTransport`](crate::socket::SocketTransport) — workers in other
//!   processes reached over TCP or Unix-domain sockets (see
//!   [`socket`](crate::socket)).
//!
//! Byte counts reported for these transports are exact frame lengths (tag +
//! view name + matrix headers + payload), not analytical estimates.
//!
//! Protocol (all integers little-endian):
//!
//! ```text
//! coordinator -> worker        worker -> coordinator
//!   0  shutdown
//!   1  install  name block       (no reply)
//!   2  delta    name U V         (no reply; worker slices its own rows)
//!   3  gather   name             status 0, name, block   — ok
//!                                status 1, message       — protocol error
//!   4  reset                     (no reply)
//!   5  delta*   name U V         (as 2, factors flag-encoded dense|sparse)
//! ```
//!
//! The tag-5 frame carries each factor behind a one-byte encoding flag:
//! dense (the tag-2 layout) or sparse triplets `(u32 row, u32 col, f64)` in
//! row-major order, keeping only entries `x != 0.0`. A factor is encoded
//! sparse exactly when that is the shorter form (`2·nnz < rows·cols`), so a
//! compressed broadcast's wire bytes scale with the factors' nonzero count
//! rather than their dense footprint.
//!
//! # Protocol errors poison, they never panic
//!
//! A malformed frame, an unknown tag, or a delta for a view that was never
//! installed marks the worker *poisoned* instead of killing it: the worker
//! drops further state-changing frames and answers every gather with a
//! status-1 error reply carrying the original failure, which the
//! coordinator surfaces as [`TransportError::Worker`]. A reset (the first
//! step of every re-materialize) clears the poison, so recovery needs no
//! process restart. No input on this path can panic a worker or hang the
//! coordinator.
//!
//! Because each worker processes its frames in FIFO order, a gather reply
//! is only produced after every previously sent delta has been applied —
//! [`FramePool::gather`] is the synchronization point coordinators use
//! before reading distributed state.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::thread::JoinHandle;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use linview_matrix::{factor_nnz, Matrix};

use crate::DistMatrix;

pub(crate) const TAG_SHUTDOWN: u8 = 0;
const TAG_INSTALL: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_GATHER: u8 = 3;
const TAG_RESET: u8 = 4;
const TAG_DELTA_SPARSE: u8 = 5;

/// Flag byte: the matrix that follows uses the dense (tag-2) layout.
const ENC_DENSE: u8 = 0;
/// Flag byte: the matrix that follows is a triplet list of its nonzeros.
const ENC_SPARSE: u8 = 1;

/// Gather reply status byte: the reply carries the view name and block.
const REPLY_OK: u8 = 0;
/// Gather reply status byte: the reply carries a protocol-error message.
const REPLY_ERR: u8 = 1;

/// How many frames a coordinator may queue per in-process worker before
/// sends block (back-pressure against unbounded buffering).
const CHANNEL_BOUND: usize = 64;

/// Errors surfaced by the message-passing transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A worker's connection hung up: its thread or process exited.
    WorkerDisconnected {
        /// Row-major index of the dead worker.
        worker: usize,
    },
    /// A frame could not be decoded.
    Malformed(&'static str),
    /// A worker reported a protocol error (poisoned state) in a reply.
    Worker {
        /// Row-major index of the reporting worker.
        worker: usize,
        /// The worker's description of the original failure.
        message: String,
    },
    /// A socket-level I/O failure talking to a worker.
    Io {
        /// Row-major index of the affected worker.
        worker: usize,
        /// Rendered `std::io::Error`.
        message: String,
    },
    /// A peer answered the connection handshake incorrectly.
    Handshake {
        /// Row-major index of the affected worker.
        worker: usize,
        /// What was wrong with the handshake.
        message: String,
    },
    /// A worker did not reply within the configured read timeout — the
    /// peer is presumed dead or stalled.
    Timeout {
        /// Row-major index of the unresponsive worker.
        worker: usize,
    },
    /// A transport was configured inconsistently (bad address, grid/worker
    /// count mismatch).
    Config(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::WorkerDisconnected { worker } => {
                write!(f, "worker {worker} disconnected")
            }
            TransportError::Malformed(what) => write!(f, "malformed transport frame: {what}"),
            TransportError::Worker { worker, message } => {
                write!(f, "worker {worker} protocol error: {message}")
            }
            TransportError::Io { worker, message } => {
                write!(f, "i/o error talking to worker {worker}: {message}")
            }
            TransportError::Handshake { worker, message } => {
                write!(f, "handshake with worker {worker} failed: {message}")
            }
            TransportError::Timeout { worker } => {
                write!(f, "worker {worker} timed out (peer dead or stalled)")
            }
            TransportError::Config(what) => write!(f, "transport configuration error: {what}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Result alias for transport operations.
pub type TransportResult<T> = std::result::Result<T, TransportError>;

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

fn put_name(buf: &mut BytesMut, name: &str) {
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name.as_bytes());
}

fn get_name(buf: &mut Bytes) -> TransportResult<String> {
    if buf.remaining() < 4 {
        return Err(TransportError::Malformed("name header"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(TransportError::Malformed("name payload"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| TransportError::Malformed("name utf-8"))
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        buf.put_f64_le(x);
    }
}

fn get_matrix(buf: &mut Bytes) -> TransportResult<Matrix> {
    if buf.remaining() < 8 {
        return Err(TransportError::Malformed("matrix header"));
    }
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let len = rows * cols;
    if buf.remaining() < 8 * len {
        return Err(TransportError::Malformed("matrix payload"));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(buf.get_f64_le());
    }
    Matrix::from_vec(rows, cols, data).map_err(|_| TransportError::Malformed("matrix shape"))
}

/// Whether the flagged encoding of `m` is shorter sparse than dense.
///
/// Sparse spends 16 bytes per stored entry plus a 4-byte count against the
/// dense form's 8 bytes per cell, so sparse wins exactly when
/// `2·nnz < rows·cols`. Exposed so coordinators (and their byte-accounting
/// models) can predict a frame's layout without serializing it.
pub fn factor_prefers_sparse(m: &Matrix) -> bool {
    2 * factor_nnz(m) < m.len()
}

fn put_matrix_auto(buf: &mut BytesMut, m: &Matrix) {
    if factor_prefers_sparse(m) {
        buf.put_u8(ENC_SPARSE);
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        buf.put_u32_le(factor_nnz(m) as u32);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let x = m.get(r, c);
                if x != 0.0 {
                    buf.put_u32_le(r as u32);
                    buf.put_u32_le(c as u32);
                    buf.put_f64_le(x);
                }
            }
        }
    } else {
        buf.put_u8(ENC_DENSE);
        put_matrix(buf, m);
    }
}

fn get_matrix_auto(buf: &mut Bytes) -> TransportResult<Matrix> {
    if buf.remaining() < 1 {
        return Err(TransportError::Malformed("encoding flag"));
    }
    match buf.get_u8() {
        ENC_DENSE => get_matrix(buf),
        ENC_SPARSE => {
            if buf.remaining() < 12 {
                return Err(TransportError::Malformed("sparse matrix header"));
            }
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            let nnz = buf.get_u32_le() as usize;
            if buf.remaining() < 16 * nnz {
                return Err(TransportError::Malformed("sparse matrix payload"));
            }
            let mut m = Matrix::zeros(rows, cols);
            for _ in 0..nnz {
                let r = buf.get_u32_le() as usize;
                let c = buf.get_u32_le() as usize;
                let x = buf.get_f64_le();
                if r >= rows || c >= cols {
                    return Err(TransportError::Malformed("sparse entry out of bounds"));
                }
                m.set(r, c, x);
            }
            Ok(m)
        }
        _ => Err(TransportError::Malformed("unknown matrix encoding")),
    }
}

pub(crate) fn control_frame(tag: u8) -> Bytes {
    let mut buf = BytesMut::with_capacity(1);
    buf.put_u8(tag);
    buf.freeze()
}

fn install_frame(view: &str, block: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len() + 8 + 8 * block.len());
    buf.put_u8(TAG_INSTALL);
    put_name(&mut buf, view);
    put_matrix(&mut buf, block);
    buf.freeze()
}

/// The broadcast frame carrying one factored delta `ΔX = U Vᵀ` for `view`.
///
/// Public so tests (and accounting audits) can recompute a backend's
/// metered byte counts from the *same* serialization the workers receive:
/// the frame length — tag, name, two matrix headers, and the `f64` payloads
/// — is exactly what [`FramePool::broadcast_delta`] reports per worker.
/// The engine's delta event log stores these same bytes, so replay after a
/// crash folds bit-identical updates.
pub fn delta_frame(view: &str, u: &Matrix, v: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len() + 16 + 8 * (u.len() + v.len()));
    buf.put_u8(TAG_DELTA);
    put_name(&mut buf, view);
    put_matrix(&mut buf, u);
    put_matrix(&mut buf, v);
    buf.freeze()
}

/// The compressed broadcast frame: same delta as [`delta_frame`], but each
/// factor is flag-encoded and switches to a triplet list of its nonzeros
/// whenever that is the shorter form.
///
/// Public for the same reason as [`delta_frame`]: byte-accounting audits
/// recompute a backend's metered counts from the serialization the workers
/// actually receive. Decoding reconstructs each factor cell for cell, so a
/// worker folding a sparse frame stays bit-identical to one folding the
/// dense frame (only the signs of zeros can differ, which `==` ignores).
pub fn sparse_delta_frame(view: &str, u: &Matrix, v: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len() + 18 + 8 * (u.len() + v.len()));
    buf.put_u8(TAG_DELTA_SPARSE);
    put_name(&mut buf, view);
    put_matrix_auto(&mut buf, u);
    put_matrix_auto(&mut buf, v);
    buf.freeze()
}

/// Decodes a [`delta_frame`] or [`sparse_delta_frame`] back into
/// `(view, U, V)`.
///
/// The engine's delta event log stores broadcast frames verbatim; recovery
/// replays them through this decoder, so the replayed factors are exactly
/// the bytes every worker folded the first time.
pub fn decode_delta_frame(mut frame: Bytes) -> TransportResult<(String, Matrix, Matrix)> {
    if !frame.has_remaining() {
        return Err(TransportError::Malformed("empty delta frame"));
    }
    let tag = frame.get_u8();
    let (name, u, v) = match tag {
        TAG_DELTA => {
            let name = get_name(&mut frame)?;
            (name, get_matrix(&mut frame)?, get_matrix(&mut frame)?)
        }
        TAG_DELTA_SPARSE => {
            let name = get_name(&mut frame)?;
            (
                name,
                get_matrix_auto(&mut frame)?,
                get_matrix_auto(&mut frame)?,
            )
        }
        _ => return Err(TransportError::Malformed("not a delta frame")),
    };
    if frame.has_remaining() {
        return Err(TransportError::Malformed(
            "trailing bytes after delta frame",
        ));
    }
    Ok((name, u, v))
}

fn gather_frame(view: &str) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len());
    buf.put_u8(TAG_GATHER);
    put_name(&mut buf, view);
    buf.freeze()
}

fn ok_reply(view: &str, block: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len() + 8 + 8 * block.len());
    buf.put_u8(REPLY_OK);
    put_name(&mut buf, view);
    put_matrix(&mut buf, block);
    buf.freeze()
}

fn err_reply(message: &str) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + message.len());
    buf.put_u8(REPLY_ERR);
    put_name(&mut buf, message);
    buf.freeze()
}

// ---------------------------------------------------------------------------
// Worker state machine
// ---------------------------------------------------------------------------

/// What a worker does after handling one frame.
pub(crate) enum FrameOutcome {
    /// Keep reading frames.
    Continue,
    /// Send this reply to the coordinator, then keep reading.
    Reply(Bytes),
    /// Leave the frame loop (shutdown frame received).
    Shutdown,
}

/// One worker's installed blocks plus its poison flag: the frame-handling
/// state machine shared by the in-process channel workers and the socket
/// worker processes, so both transports have identical protocol semantics.
///
/// Protocol violations (an undecodable frame, an unknown tag, a delta for
/// a view that was never installed) *poison* the worker: state-changing
/// frames are dropped from then on and every gather answers with an error
/// reply carrying the original failure. A reset clears the poison.
pub(crate) struct WorkerState {
    br: usize,
    bc: usize,
    blocks: BTreeMap<String, Matrix>,
    poisoned: Option<String>,
}

impl WorkerState {
    pub(crate) fn new(br: usize, bc: usize) -> WorkerState {
        WorkerState {
            br,
            bc,
            blocks: BTreeMap::new(),
            poisoned: None,
        }
    }

    fn poison(&mut self, message: String) {
        // First failure wins: later errors are usually knock-on effects.
        if self.poisoned.is_none() {
            self.poisoned = Some(message);
        }
    }

    fn fold_delta(&mut self, name: &str, u: &Matrix, v: &Matrix) -> Result<(), String> {
        let (br, bc) = (self.br, self.bc);
        let block = self
            .blocks
            .get_mut(name)
            .ok_or_else(|| format!("delta for uninstalled view '{name}'"))?;
        if u.cols() == 0 {
            return Ok(()); // rank-0 delta: nothing to fold
        }
        // Slice this worker's own rows out of the broadcast factors (the
        // same arithmetic as `dist_add_low_rank`, so worker state stays
        // bit-identical to the metered simulation).
        let (bh, bw) = (block.rows(), block.cols());
        let ui = u
            .submatrix(br * bh, 0, bh, u.cols())
            .map_err(|_| format!("delta factor U does not conform to view '{name}'"))?;
        let vj = v
            .submatrix(bc * bw, 0, bw, v.cols())
            .map_err(|_| format!("delta factor V does not conform to view '{name}'"))?;
        let delta = ui
            .try_matmul(&vj.transpose())
            .map_err(|_| format!("delta factor ranks disagree for view '{name}'"))?;
        block
            .add_assign_from(&delta)
            .map_err(|_| format!("delta block shape mismatch for view '{name}'"))?;
        Ok(())
    }

    /// Handles one coordinator frame. Never panics: every malformed input
    /// poisons the worker (reported at the next gather) instead.
    pub(crate) fn handle(&mut self, mut frame: Bytes) -> FrameOutcome {
        if !frame.has_remaining() {
            self.poison("empty frame".to_string());
            return FrameOutcome::Continue;
        }
        match frame.get_u8() {
            TAG_SHUTDOWN => FrameOutcome::Shutdown,
            TAG_RESET => {
                self.blocks.clear();
                self.poisoned = None;
                FrameOutcome::Continue
            }
            TAG_INSTALL => {
                if self.poisoned.is_some() {
                    return FrameOutcome::Continue;
                }
                match get_name(&mut frame).and_then(|name| Ok((name, get_matrix(&mut frame)?))) {
                    Ok((name, block)) => {
                        self.blocks.insert(name, block);
                    }
                    Err(e) => self.poison(format!("undecodable install frame: {e}")),
                }
                FrameOutcome::Continue
            }
            tag @ (TAG_DELTA | TAG_DELTA_SPARSE) => {
                if self.poisoned.is_some() {
                    return FrameOutcome::Continue;
                }
                let decoded = get_name(&mut frame).and_then(|name| {
                    let (u, v) = if tag == TAG_DELTA {
                        (get_matrix(&mut frame)?, get_matrix(&mut frame)?)
                    } else {
                        (get_matrix_auto(&mut frame)?, get_matrix_auto(&mut frame)?)
                    };
                    Ok((name, u, v))
                });
                match decoded {
                    Ok((name, u, v)) => {
                        if let Err(msg) = self.fold_delta(&name, &u, &v) {
                            self.poison(msg);
                        }
                    }
                    Err(e) => self.poison(format!("undecodable delta frame: {e}")),
                }
                FrameOutcome::Continue
            }
            TAG_GATHER => {
                let name = match get_name(&mut frame) {
                    Ok(name) => name,
                    Err(e) => {
                        let msg = format!("undecodable gather frame: {e}");
                        self.poison(msg.clone());
                        return FrameOutcome::Reply(err_reply(&msg));
                    }
                };
                if let Some(msg) = &self.poisoned {
                    return FrameOutcome::Reply(err_reply(msg));
                }
                match self.blocks.get(&name) {
                    Some(block) => FrameOutcome::Reply(ok_reply(&name, block)),
                    None => {
                        // A read miss does not poison: the worker's state is
                        // still sound, the coordinator just asked for a view
                        // that is not installed here.
                        FrameOutcome::Reply(err_reply(&format!(
                            "gather of uninstalled view '{name}'"
                        )))
                    }
                }
            }
            other => {
                self.poison(format!("unknown frame tag {other}"));
                FrameOutcome::Continue
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Transport abstraction
// ---------------------------------------------------------------------------

/// Moves opaque byte frames between a coordinator and its grid workers.
///
/// Implementations differ only in *where* the workers live (threads in this
/// process, processes behind sockets); the frame protocol and the
/// `WorkerState` machine interpreting it are shared, which is what keeps
/// every transport bit-identical to the metered simulation.
pub trait Transport: fmt::Debug + Send {
    /// Short name for diagnostics and backend labels (e.g. `"threaded"`).
    fn label(&self) -> &'static str;

    /// Number of workers (row-major over the grid).
    fn workers(&self) -> usize;

    /// Sends one frame to worker `worker`. Blocks under back-pressure.
    fn send(&self, worker: usize, frame: Bytes) -> TransportResult<()>;

    /// Sends a batch of frames to worker `worker`. Transports that write to
    /// a wire coalesce the batch into a single write; the default just
    /// loops [`Transport::send`].
    fn send_batch(&self, worker: usize, frames: &[Bytes]) -> TransportResult<()> {
        for frame in frames {
            self.send(worker, frame.clone())?;
        }
        Ok(())
    }

    /// Receives the next reply frame from worker `worker`. Must detect a
    /// dead or disconnected peer (error, not a hang).
    fn recv_reply(&self, worker: usize) -> TransportResult<Bytes>;

    /// Reconnects or respawns every dead worker, returning how many were
    /// brought back. Revived workers start with *empty* state; the caller
    /// must re-install views (a re-materialize does exactly that).
    fn revive(&mut self) -> TransportResult<usize>;
}

// ---------------------------------------------------------------------------
// In-process channel transport
// ---------------------------------------------------------------------------

fn channel_worker_loop(br: usize, bc: usize, rx: Receiver<Bytes>, reply: Sender<Bytes>) {
    let mut state = WorkerState::new(br, bc);
    while let Ok(frame) = rx.recv() {
        match state.handle(frame) {
            FrameOutcome::Continue => {}
            FrameOutcome::Reply(bytes) => {
                if reply.send(bytes).is_err() {
                    break; // coordinator went away
                }
            }
            FrameOutcome::Shutdown => break,
        }
    }
}

struct ChannelLink {
    br: usize,
    bc: usize,
    tx: SyncSender<Bytes>,
    reply: Receiver<Bytes>,
    handle: Option<JoinHandle<()>>,
}

impl ChannelLink {
    fn spawn(br: usize, bc: usize) -> ChannelLink {
        let (tx, rx) = mpsc::sync_channel(CHANNEL_BOUND);
        let (reply_tx, reply_rx) = mpsc::channel();
        let handle = std::thread::Builder::new()
            .name(format!("linview-worker-{br}-{bc}"))
            .spawn(move || channel_worker_loop(br, bc, rx, reply_tx))
            .expect("worker thread spawns");
        ChannelLink {
            br,
            bc,
            tx,
            reply: reply_rx,
            handle: Some(handle),
        }
    }

    fn is_dead(&self) -> bool {
        self.handle.as_ref().is_none_or(|h| h.is_finished())
    }
}

/// One worker thread per grid partition inside this process, connected by
/// bounded byte-frame channels.
///
/// The send channel is bounded (`CHANNEL_BOUND` = 64 frames), so a coordinator
/// that outruns its workers blocks — back-pressure, not unbounded memory.
/// Dropping the transport sends every live worker a shutdown frame and
/// joins the threads.
pub struct ChannelTransport {
    links: Vec<ChannelLink>,
}

impl ChannelTransport {
    /// Spawns one worker thread per cell of a `grid_rows × grid_cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or a thread cannot be spawned.
    pub fn spawn(grid_rows: usize, grid_cols: usize) -> ChannelTransport {
        assert!(
            grid_rows > 0 && grid_cols > 0,
            "worker grid must have at least one row and column"
        );
        let mut links = Vec::with_capacity(grid_rows * grid_cols);
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                links.push(ChannelLink::spawn(br, bc));
            }
        }
        ChannelTransport { links }
    }

    /// Terminates worker `worker` (its queued frames are lost) and joins
    /// the thread — the in-process equivalent of `SIGKILL`ing a worker
    /// process. Subsequent sends observe [`TransportError::WorkerDisconnected`].
    pub fn kill_worker(&mut self, worker: usize) {
        let link = &mut self.links[worker];
        let _ = link.tx.send(control_frame(TAG_SHUTDOWN));
        if let Some(handle) = link.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Transport for ChannelTransport {
    fn label(&self) -> &'static str {
        "threaded"
    }

    fn workers(&self) -> usize {
        self.links.len()
    }

    fn send(&self, worker: usize, frame: Bytes) -> TransportResult<()> {
        self.links[worker]
            .tx
            .send(frame)
            .map_err(|_| TransportError::WorkerDisconnected { worker })
    }

    fn recv_reply(&self, worker: usize) -> TransportResult<Bytes> {
        self.links[worker]
            .reply
            .recv()
            .map_err(|_| TransportError::WorkerDisconnected { worker })
    }

    fn revive(&mut self) -> TransportResult<usize> {
        let mut revived = 0;
        for idx in 0..self.links.len() {
            if self.links[idx].is_dead() {
                let (br, bc) = (self.links[idx].br, self.links[idx].bc);
                if let Some(handle) = self.links[idx].handle.take() {
                    let _ = handle.join();
                }
                self.links[idx] = ChannelLink::spawn(br, bc);
                revived += 1;
            }
        }
        Ok(revived)
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        let frame = control_frame(TAG_SHUTDOWN);
        for link in &self.links {
            let _ = link.tx.send(frame.clone());
        }
        for link in &mut self.links {
            if let Some(handle) = link.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("workers", &self.links.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Coordinator pool
// ---------------------------------------------------------------------------

/// A grid of frame-protocol workers behind any [`Transport`].
///
/// [`WorkerPool`] (over [`ChannelTransport`]) keeps the historical
/// in-process behavior; a pool over
/// [`SocketTransport`](crate::socket::SocketTransport) talks to worker
/// processes instead. All coordinator-side protocol logic — scatter
/// installs, delta broadcasts, barrier gathers, reply draining — lives
/// here, once.
pub struct FramePool<T: Transport> {
    grid_rows: usize,
    grid_cols: usize,
    transport: T,
}

/// A grid of long-lived worker threads connected by byte-frame channels
/// (the [`FramePool`] over [`ChannelTransport`]).
pub type WorkerPool = FramePool<ChannelTransport>;

impl WorkerPool {
    /// Spawns one worker thread per cell of a `grid_rows × grid_cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or a thread cannot be spawned.
    pub fn spawn(grid_rows: usize, grid_cols: usize) -> WorkerPool {
        FramePool {
            grid_rows,
            grid_cols,
            transport: ChannelTransport::spawn(grid_rows, grid_cols),
        }
    }

    /// Terminates one worker thread abruptly (see
    /// [`ChannelTransport::kill_worker`]); the fault-injection hook used by
    /// recovery tests.
    pub fn kill_worker(&mut self, worker: usize) {
        self.transport.kill_worker(worker);
    }
}

impl<T: Transport> FramePool<T> {
    /// Wraps an already-connected transport as a `grid_rows × grid_cols`
    /// pool. Errors if the transport's worker count does not match.
    pub fn from_transport(
        grid_rows: usize,
        grid_cols: usize,
        transport: T,
    ) -> TransportResult<FramePool<T>> {
        if grid_rows == 0 || grid_cols == 0 {
            return Err(TransportError::Config(
                "worker grid must have at least one row and column".to_string(),
            ));
        }
        if transport.workers() != grid_rows * grid_cols {
            return Err(TransportError::Config(format!(
                "{} workers cannot form a {grid_rows}x{grid_cols} grid",
                transport.workers()
            )));
        }
        Ok(FramePool {
            grid_rows,
            grid_cols,
            transport,
        })
    }

    /// Short name of the underlying transport (e.g. `"threaded"`).
    pub fn label(&self) -> &'static str {
        self.transport.label()
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.transport.workers()
    }

    /// Grid rows.
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid columns.
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The underlying transport, mutably (fault injection, reconfiguration).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn send_to(&self, idx: usize, frame: Bytes) -> TransportResult<()> {
        self.transport.send(idx, frame)
    }

    fn send_all(&self, frame: &Bytes) -> TransportResult<()> {
        for idx in 0..self.workers() {
            self.send_to(idx, frame.clone())?;
        }
        Ok(())
    }

    /// Clears every worker's installed views and poison flags (precedes a
    /// re-materialize).
    pub fn reset(&self) -> TransportResult<()> {
        self.send_all(&control_frame(TAG_RESET))
    }

    /// Reconnects or respawns dead workers (see [`Transport::revive`]),
    /// returning how many came back. Revived workers are empty; follow with
    /// a re-materialize.
    pub fn revive(&mut self) -> TransportResult<usize> {
        self.transport.revive()
    }

    /// Scatter-installs `view`'s blocks, one per worker. The partition grid
    /// must match the pool's. Returns the per-worker frame length in bytes
    /// (blocks are equally sized, so every frame is the same length).
    pub fn install(&self, view: &str, blocks: &DistMatrix) -> TransportResult<u64> {
        assert_eq!(
            (blocks.grid_rows(), blocks.grid_cols()),
            (self.grid_rows, self.grid_cols),
            "partition grid does not match the worker grid"
        );
        let mut frame_len = 0;
        for br in 0..self.grid_rows {
            for bc in 0..self.grid_cols {
                let frame = install_frame(view, blocks.block(br, bc));
                frame_len = frame.len() as u64;
                self.send_to(br * self.grid_cols + bc, frame)?;
            }
        }
        Ok(frame_len)
    }

    /// Broadcasts the factored delta `ΔX = U Vᵀ` for `view` to every
    /// worker, returning the serialized frame length actually sent to each
    /// (the exact per-worker byte cost of the broadcast).
    pub fn broadcast_delta(&self, view: &str, u: &Matrix, v: &Matrix) -> TransportResult<u64> {
        let frame = delta_frame(view, u, v);
        let len = frame.len() as u64;
        self.send_all(&frame)?;
        Ok(len)
    }

    /// Broadcasts the factored delta as a compressed
    /// ([`sparse_delta_frame`]) frame instead of a dense one, returning the
    /// serialized frame length sent to each worker. Workers fold the
    /// reconstructed factors through the same arithmetic as
    /// [`FramePool::broadcast_delta`], so the two frames are
    /// interchangeable in everything but wire bytes.
    pub fn broadcast_delta_sparse(
        &self,
        view: &str,
        u: &Matrix,
        v: &Matrix,
    ) -> TransportResult<u64> {
        let frame = sparse_delta_frame(view, u, v);
        let len = frame.len() as u64;
        self.send_all(&frame)?;
        Ok(len)
    }

    /// Broadcasts a pre-serialized batch of frames (one flush round's worth
    /// of deltas) to every worker, batched per worker so wire transports
    /// coalesce the round into one write.
    ///
    /// Unlike the fail-fast single broadcasts, a dead worker does **not**
    /// stop delivery to the survivors — they all receive the full batch, so
    /// live workers and the coordinator's mirror agree even when one peer
    /// died mid-round. Returns one result per worker; the caller decides
    /// whether a partial broadcast is an error (it is for the backends,
    /// which surface the first failure after metering the survivors).
    pub fn broadcast_frames(&self, frames: &[Bytes]) -> Vec<TransportResult<()>> {
        (0..self.workers())
            .map(|idx| self.transport.send_batch(idx, frames))
            .collect()
    }

    /// Gathers `view`'s blocks back from the workers, in row-major grid
    /// order. Doubles as a barrier: every worker has applied all previously
    /// broadcast deltas by the time its reply arrives.
    ///
    /// A dead or unresponsive peer surfaces as
    /// [`TransportError::WorkerDisconnected`] / [`TransportError::Timeout`]
    /// instead of blocking forever, and a poisoned worker's status-1 reply
    /// surfaces as [`TransportError::Worker`] carrying the original
    /// protocol failure. Replies from *all* live workers are drained even
    /// when one errors, so a failed gather never leaves stale replies
    /// queued for the next one.
    ///
    /// Replies are tagged with the view name; a reply for a *different*
    /// view (a stale frame left queued by an earlier gather that errored
    /// out mid-collection) surfaces as [`TransportError::Malformed`]
    /// rather than silently returning another view's data.
    pub fn gather(&self, view: &str) -> TransportResult<Vec<Matrix>> {
        // Send the gather frame everywhere first (it is the barrier), then
        // drain every reachable worker's reply even if some error — leaving
        // replies queued would desynchronize the next gather.
        let sent: Vec<TransportResult<()>> = (0..self.workers())
            .map(|idx| self.send_to(idx, gather_frame(view)))
            .collect();
        let results: Vec<TransportResult<Matrix>> = sent
            .into_iter()
            .enumerate()
            .map(|(idx, sent)| {
                sent?;
                let mut reply = self.transport.recv_reply(idx)?;
                if !reply.has_remaining() {
                    return Err(TransportError::Malformed("empty gather reply"));
                }
                match reply.get_u8() {
                    REPLY_OK => {
                        let replied_view = get_name(&mut reply)?;
                        if replied_view != view {
                            return Err(TransportError::Malformed("gather reply for another view"));
                        }
                        get_matrix(&mut reply)
                    }
                    REPLY_ERR => {
                        let message = get_name(&mut reply)?;
                        Err(TransportError::Worker {
                            worker: idx,
                            message,
                        })
                    }
                    _ => Err(TransportError::Malformed("unknown gather reply status")),
                }
            })
            .collect();
        results.into_iter().collect()
    }
}

impl<T: Transport> fmt::Debug for FramePool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FramePool")
            .field("transport", &self.transport)
            .field("grid_rows", &self.grid_rows)
            .field("grid_cols", &self.grid_cols)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dist_add_low_rank, Cluster};
    use linview_matrix::ApproxEq;

    #[test]
    fn matrix_codec_round_trips() {
        let m = Matrix::random_uniform(5, 3, 7);
        let mut buf = BytesMut::new();
        put_matrix(&mut buf, &m);
        assert_eq!(buf.len(), 8 + 8 * 15);
        let mut frame = buf.freeze();
        let back = get_matrix(&mut frame).unwrap();
        assert_eq!(back, m);
        assert!(!frame.has_remaining());
    }

    #[test]
    fn truncated_frames_are_malformed_not_panics() {
        let m = Matrix::random_uniform(4, 4, 9);
        let mut buf = BytesMut::new();
        put_matrix(&mut buf, &m);
        let full = buf.freeze();
        let mut truncated = full.slice(0..full.len() - 1);
        assert!(matches!(
            get_matrix(&mut truncated),
            Err(TransportError::Malformed(_))
        ));
        let mut header_only = full.slice(0..6);
        assert!(matches!(
            get_matrix(&mut header_only),
            Err(TransportError::Malformed(_))
        ));
        let mut name = Bytes::from(vec![3, 0, 0, 0, b'a']);
        assert!(matches!(
            get_name(&mut name),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn delta_frame_length_is_deterministic_and_header_exact() {
        let u = Matrix::random_uniform(8, 2, 1);
        let v = Matrix::random_uniform(8, 2, 2);
        let frame = delta_frame("view", &u, &v);
        // tag + (len + "view") + 2 matrix headers + payloads.
        assert_eq!(frame.len(), 1 + 4 + 4 + 16 + 8 * (16 + 16));
        assert_eq!(frame.len(), delta_frame("view", &u, &v).len());
    }

    #[test]
    fn delta_frames_decode_back_to_their_factors() {
        let u = Matrix::random_uniform(8, 2, 61);
        let v = Matrix::random_uniform(8, 2, 62);
        for frame in [delta_frame("X", &u, &v), sparse_delta_frame("X", &u, &v)] {
            let (name, du, dv) = decode_delta_frame(frame).unwrap();
            assert_eq!(name, "X");
            assert_eq!(du, u);
            assert_eq!(dv, v);
        }
        assert!(matches!(
            decode_delta_frame(control_frame(TAG_GATHER)),
            Err(TransportError::Malformed(_))
        ));
        assert!(matches!(
            decode_delta_frame(Bytes::new()),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn pool_applies_deltas_identically_to_the_metered_simulation() {
        for (gr, gc) in [(1, 1), (2, 2), (2, 4), (3, 1)] {
            let pool = WorkerPool::spawn(gr, gc);
            let m0 = Matrix::random_uniform(24, 24, 11);
            let dm0 = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
            pool.install("X", &dm0).unwrap();

            let u = Matrix::random_uniform(24, 3, 12);
            let v = Matrix::random_uniform(24, 3, 13);
            let sent = pool.broadcast_delta("X", &u, &v).unwrap();
            assert_eq!(sent, delta_frame("X", &u, &v).len() as u64);

            // Reference: the metered (non-moving) kernel on the same input.
            let cluster = Cluster::with_grid(gr, gc);
            let mut reference = dm0.clone();
            dist_add_low_rank(&mut reference, &u, &v, &cluster).unwrap();

            let gathered = pool.gather("X").unwrap();
            for (idx, block) in gathered.iter().enumerate() {
                let (br, bc) = (idx / gc, idx % gc);
                assert_eq!(
                    block,
                    reference.block(br, bc),
                    "worker ({br},{bc}) block diverged on grid {gr}x{gc}"
                );
            }
        }
    }

    #[test]
    fn gather_is_a_barrier_over_many_queued_deltas() {
        let pool = WorkerPool::spawn(2, 2);
        let m0 = Matrix::zeros(8, 8);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        let mut expected = m0;
        for seed in 0..20 {
            let u = Matrix::random_uniform(8, 1, seed);
            let v = Matrix::random_uniform(8, 1, seed + 100);
            pool.broadcast_delta("X", &u, &v).unwrap();
            expected
                .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
                .unwrap();
        }
        let blocks = pool.gather("X").unwrap();
        let mut got = Matrix::zeros(8, 8);
        for (idx, block) in blocks.iter().enumerate() {
            let (br, bc) = (idx / 2, idx % 2);
            got.set_submatrix(br * 4, bc * 4, block).unwrap();
        }
        assert!(got.approx_eq(&expected, 0.0), "pipelined deltas were lost");
    }

    #[test]
    fn reset_forgets_installed_views_and_reinstall_replaces() {
        let pool = WorkerPool::spawn(1, 2);
        let a = Matrix::random_uniform(4, 4, 21);
        let b = Matrix::random_uniform(4, 4, 22);
        pool.install("X", &DistMatrix::from_dense_grid(&a, 1, 2).unwrap())
            .unwrap();
        pool.reset().unwrap();
        pool.install("X", &DistMatrix::from_dense_grid(&b, 1, 2).unwrap())
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks[0], b.submatrix(0, 0, 4, 2).unwrap());
        assert_eq!(blocks[1], b.submatrix(0, 2, 4, 2).unwrap());
    }

    #[test]
    fn flagged_codec_round_trips_both_encodings() {
        // Sparse-preferring: 2 nonzeros in a 6×2 factor (2·2 < 12).
        let mut sp = Matrix::zeros(6, 2);
        sp.set(1, 0, 3.5);
        sp.set(4, 1, -2.25);
        // Dense-preferring: every cell nonzero.
        let dn = Matrix::random_uniform(3, 3, 17);
        for m in [&sp, &dn] {
            let mut buf = BytesMut::new();
            put_matrix_auto(&mut buf, m);
            let mut frame = buf.freeze();
            let back = get_matrix_auto(&mut frame).unwrap();
            assert_eq!(&back, m);
            assert!(!frame.has_remaining());
        }
        assert!(factor_prefers_sparse(&sp));
        assert!(!factor_prefers_sparse(&dn));
        // Exact lengths: sparse = 1+8+4+16·nnz, dense = 1+8+8·len.
        let mut buf = BytesMut::new();
        put_matrix_auto(&mut buf, &sp);
        assert_eq!(buf.len(), 13 + 16 * 2);
        let mut buf = BytesMut::new();
        put_matrix_auto(&mut buf, &dn);
        assert_eq!(buf.len(), 9 + 8 * 9);
    }

    #[test]
    fn sparse_encoding_engages_exactly_when_shorter() {
        // Densities straddling the 2·nnz = len threshold on an 8×4 factor
        // (len 32): nnz 15 → sparse (30 < 32), nnz 16 → dense (32 ≮ 32).
        for (nnz, expect_sparse) in [(15usize, true), (16usize, false)] {
            let mut m = Matrix::zeros(8, 4);
            for i in 0..nnz {
                m.set(i / 4, i % 4, 1.0 + i as f64);
            }
            assert_eq!(factor_prefers_sparse(&m), expect_sparse, "nnz {nnz}");
            let mut buf = BytesMut::new();
            put_matrix_auto(&mut buf, &m);
            let dense_len = 9 + 8 * m.len();
            if expect_sparse {
                assert!(buf.len() < dense_len);
            } else {
                assert_eq!(buf.len(), dense_len);
            }
            let back = get_matrix_auto(&mut buf.freeze()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn truncated_sparse_frames_are_malformed_not_panics() {
        let mut sp = Matrix::zeros(6, 2);
        sp.set(2, 1, 9.0);
        let mut buf = BytesMut::new();
        put_matrix_auto(&mut buf, &sp);
        let full = buf.freeze();
        for cut in [0, 5, full.len() - 1] {
            let mut truncated = full.slice(0..cut);
            assert!(matches!(
                get_matrix_auto(&mut truncated),
                Err(TransportError::Malformed(_))
            ));
        }
        // An out-of-bounds triplet is a decode error, not a panic.
        let mut bad = BytesMut::new();
        bad.put_u8(ENC_SPARSE);
        bad.put_u32_le(2);
        bad.put_u32_le(2);
        bad.put_u32_le(1);
        bad.put_u32_le(7); // row 7 of a 2×2 matrix
        bad.put_u32_le(0);
        bad.put_f64_le(1.0);
        assert!(matches!(
            get_matrix_auto(&mut bad.freeze()),
            Err(TransportError::Malformed(_))
        ));
        // Unknown flag byte likewise.
        let mut unknown = Bytes::from(vec![9u8]);
        assert!(matches!(
            get_matrix_auto(&mut unknown),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn sparse_broadcast_folds_identically_to_dense_and_costs_fewer_bytes() {
        for (gr, gc) in [(1, 1), (2, 2), (2, 4)] {
            let n = 24;
            let m0 = Matrix::random_uniform(n, n, 41);
            let dm0 = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();

            // A sparse rank-2 delta: two touched rows, a handful of cols.
            let mut u = Matrix::zeros(n, 2);
            u.set(3, 0, 1.0);
            u.set(17, 1, 1.0);
            let mut v = Matrix::zeros(n, 2);
            v.set(0, 0, 2.5);
            v.set(9, 0, -1.25);
            v.set(4, 1, 0.75);

            let dense_pool = WorkerPool::spawn(gr, gc);
            dense_pool.install("X", &dm0).unwrap();
            let dense_len = dense_pool.broadcast_delta("X", &u, &v).unwrap();

            let sparse_pool = WorkerPool::spawn(gr, gc);
            sparse_pool.install("X", &dm0).unwrap();
            let sparse_len = sparse_pool.broadcast_delta_sparse("X", &u, &v).unwrap();

            assert!(
                sparse_len < dense_len,
                "sparse frame ({sparse_len}B) not shorter than dense ({dense_len}B)"
            );
            assert_eq!(sparse_len, sparse_delta_frame("X", &u, &v).len() as u64);

            let dense_blocks = dense_pool.gather("X").unwrap();
            let sparse_blocks = sparse_pool.gather("X").unwrap();
            assert_eq!(
                dense_blocks, sparse_blocks,
                "sparse frame diverged from dense on grid {gr}x{gc}"
            );
        }
    }

    #[test]
    fn sparse_frame_with_dense_factors_still_decodes() {
        // Both factors dense-preferring: the tag-5 frame degenerates to
        // flag-prefixed dense payloads and must still fold correctly.
        let pool = WorkerPool::spawn(2, 2);
        let m0 = Matrix::random_uniform(8, 8, 51);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        let u = Matrix::random_uniform(8, 2, 52);
        let v = Matrix::random_uniform(8, 2, 53);
        pool.broadcast_delta_sparse("X", &u, &v).unwrap();
        let mut expected = m0;
        expected
            .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        for (idx, block) in blocks.iter().enumerate() {
            let (br, bc) = (idx / 2, idx % 2);
            assert_eq!(block, &expected.submatrix(br * 4, bc * 4, 4, 4).unwrap());
        }
    }

    #[test]
    fn rank_zero_deltas_are_noops() {
        let pool = WorkerPool::spawn(2, 1);
        let m0 = Matrix::random_uniform(6, 6, 31);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 1).unwrap())
            .unwrap();
        pool.broadcast_delta("X", &Matrix::zeros(6, 0), &Matrix::zeros(6, 0))
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks[0], m0.submatrix(0, 0, 3, 6).unwrap());
    }

    #[test]
    fn delta_for_uninstalled_view_poisons_instead_of_panicking() {
        let pool = WorkerPool::spawn(2, 2);
        let u = Matrix::random_uniform(8, 1, 71);
        let v = Matrix::random_uniform(8, 1, 72);
        // No view installed: historically this panicked the worker thread
        // and the next gather hung forever. Now it poisons, and the gather
        // surfaces the original failure as a typed error.
        pool.broadcast_delta("X", &u, &v).unwrap();
        let err = pool.gather("X").unwrap_err();
        match err {
            TransportError::Worker { message, .. } => {
                assert!(message.contains("uninstalled view 'X'"), "got: {message}");
            }
            other => panic!("expected a Worker protocol error, got {other:?}"),
        }
        // The worker thread is still alive: a reset clears the poison and
        // the pool is fully usable again.
        pool.reset().unwrap();
        let m0 = Matrix::random_uniform(8, 8, 73);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        pool.broadcast_delta("X", &u, &v).unwrap();
        let blocks = pool.gather("X").unwrap();
        let mut expected = m0;
        expected
            .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
            .unwrap();
        assert_eq!(blocks[0], expected.submatrix(0, 0, 4, 4).unwrap());
    }

    #[test]
    fn unknown_frame_tag_poisons_instead_of_panicking() {
        let pool = WorkerPool::spawn(1, 1);
        let m0 = Matrix::random_uniform(4, 4, 81);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 1, 1).unwrap())
            .unwrap();
        pool.transport().send(0, control_frame(42)).unwrap();
        let err = pool.gather("X").unwrap_err();
        assert!(matches!(err, TransportError::Worker { .. }), "{err:?}");
        assert!(err.to_string().contains("unknown frame tag 42"));
        // Reset + reinstall recovers without respawning the thread.
        pool.reset().unwrap();
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 1, 1).unwrap())
            .unwrap();
        assert_eq!(pool.gather("X").unwrap()[0], m0);
    }

    #[test]
    fn gather_of_uninstalled_view_errors_without_poisoning() {
        let pool = WorkerPool::spawn(1, 2);
        let m0 = Matrix::random_uniform(4, 4, 91);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 1, 2).unwrap())
            .unwrap();
        let err = pool.gather("Y").unwrap_err();
        assert!(matches!(err, TransportError::Worker { .. }), "{err:?}");
        // A read miss is not poison: the installed view is still gatherable
        // with no reset in between, and no stale replies are left queued.
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks[0], m0.submatrix(0, 0, 4, 2).unwrap());
    }

    #[test]
    fn killed_worker_surfaces_as_disconnect_not_a_hang() {
        let mut pool = WorkerPool::spawn(2, 2);
        let m0 = Matrix::random_uniform(8, 8, 95);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        pool.kill_worker(2);
        let err = pool.gather("X").unwrap_err();
        assert_eq!(err, TransportError::WorkerDisconnected { worker: 2 });
        // Revive respawns the dead thread; after a re-install the pool is
        // whole again (revived workers start empty, like a fresh process).
        assert_eq!(pool.revive().unwrap(), 1);
        pool.reset().unwrap();
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks[2], m0.submatrix(4, 0, 4, 4).unwrap());
    }

    #[test]
    fn failed_gather_drains_replies_so_the_next_gather_is_clean() {
        let pool = WorkerPool::spawn(2, 2);
        let m0 = Matrix::random_uniform(8, 8, 97);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        // Poison a single worker: the gather errors on it, but the other
        // three workers' OK replies must be drained, not left queued.
        pool.transport().send(1, control_frame(99)).unwrap();
        assert!(pool.gather("X").is_err());
        pool.reset().unwrap();
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0], m0.submatrix(0, 0, 4, 4).unwrap());
    }
}
