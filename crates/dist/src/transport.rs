//! Real message-passing transport: long-lived worker threads, byte frames.
//!
//! Everything else in this crate *meters* communication; this module
//! actually **moves** it. A [`WorkerPool`] spawns one OS thread per grid
//! partition, and every interaction with a worker travels as a serialized
//! [`Bytes`] frame over an `mpsc` channel — the worker owns its view blocks
//! outright and never shares memory with the coordinator. Byte counts
//! reported for this transport are therefore exact frame lengths (tag +
//! view name + matrix headers + payload), not analytical estimates.
//!
//! Protocol (all integers little-endian):
//!
//! ```text
//! coordinator -> worker        worker -> coordinator
//!   0  shutdown
//!   1  install  name block       (no reply)
//!   2  delta    name U V         (no reply; worker slices its own rows)
//!   3  gather   name             encoded block (doubles as a barrier)
//!   4  reset                     (no reply)
//!   5  delta*   name U V         (as 2, factors flag-encoded dense|sparse)
//! ```
//!
//! The tag-5 frame carries each factor behind a one-byte encoding flag:
//! dense (the tag-2 layout) or sparse triplets `(u32 row, u32 col, f64)` in
//! row-major order, keeping only entries `x != 0.0`. A factor is encoded
//! sparse exactly when that is the shorter form (`2·nnz < rows·cols`), so a
//! compressed broadcast's wire bytes scale with the factors' nonzero count
//! rather than their dense footprint.
//!
//! Because each worker processes its channel in FIFO order, a gather reply
//! is only produced after every previously sent delta has been applied —
//! [`WorkerPool::gather`] is the synchronization point coordinators use
//! before reading distributed state.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use linview_matrix::{factor_nnz, Matrix};

use crate::DistMatrix;

const TAG_SHUTDOWN: u8 = 0;
const TAG_INSTALL: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_GATHER: u8 = 3;
const TAG_RESET: u8 = 4;
const TAG_DELTA_SPARSE: u8 = 5;

/// Flag byte: the matrix that follows uses the dense (tag-2) layout.
const ENC_DENSE: u8 = 0;
/// Flag byte: the matrix that follows is a triplet list of its nonzeros.
const ENC_SPARSE: u8 = 1;

/// Errors surfaced by the message-passing transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A worker's channel hung up: its thread exited or panicked.
    WorkerDisconnected {
        /// Row-major index of the dead worker.
        worker: usize,
    },
    /// A frame could not be decoded.
    Malformed(&'static str),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::WorkerDisconnected { worker } => {
                write!(f, "worker {worker} disconnected (thread exited)")
            }
            TransportError::Malformed(what) => write!(f, "malformed transport frame: {what}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Result alias for transport operations.
pub type TransportResult<T> = std::result::Result<T, TransportError>;

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

fn put_name(buf: &mut BytesMut, name: &str) {
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name.as_bytes());
}

fn get_name(buf: &mut Bytes) -> TransportResult<String> {
    if buf.remaining() < 4 {
        return Err(TransportError::Malformed("name header"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(TransportError::Malformed("name payload"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| TransportError::Malformed("name utf-8"))
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &x in m.as_slice() {
        buf.put_f64_le(x);
    }
}

fn get_matrix(buf: &mut Bytes) -> TransportResult<Matrix> {
    if buf.remaining() < 8 {
        return Err(TransportError::Malformed("matrix header"));
    }
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let len = rows * cols;
    if buf.remaining() < 8 * len {
        return Err(TransportError::Malformed("matrix payload"));
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(buf.get_f64_le());
    }
    Matrix::from_vec(rows, cols, data).map_err(|_| TransportError::Malformed("matrix shape"))
}

/// Whether the flagged encoding of `m` is shorter sparse than dense.
///
/// Sparse spends 16 bytes per stored entry plus a 4-byte count against the
/// dense form's 8 bytes per cell, so sparse wins exactly when
/// `2·nnz < rows·cols`. Exposed so coordinators (and their byte-accounting
/// models) can predict a frame's layout without serializing it.
pub fn factor_prefers_sparse(m: &Matrix) -> bool {
    2 * factor_nnz(m) < m.len()
}

fn put_matrix_auto(buf: &mut BytesMut, m: &Matrix) {
    if factor_prefers_sparse(m) {
        buf.put_u8(ENC_SPARSE);
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        buf.put_u32_le(factor_nnz(m) as u32);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let x = m.get(r, c);
                if x != 0.0 {
                    buf.put_u32_le(r as u32);
                    buf.put_u32_le(c as u32);
                    buf.put_f64_le(x);
                }
            }
        }
    } else {
        buf.put_u8(ENC_DENSE);
        put_matrix(buf, m);
    }
}

fn get_matrix_auto(buf: &mut Bytes) -> TransportResult<Matrix> {
    if buf.remaining() < 1 {
        return Err(TransportError::Malformed("encoding flag"));
    }
    match buf.get_u8() {
        ENC_DENSE => get_matrix(buf),
        ENC_SPARSE => {
            if buf.remaining() < 12 {
                return Err(TransportError::Malformed("sparse matrix header"));
            }
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            let nnz = buf.get_u32_le() as usize;
            if buf.remaining() < 16 * nnz {
                return Err(TransportError::Malformed("sparse matrix payload"));
            }
            let mut m = Matrix::zeros(rows, cols);
            for _ in 0..nnz {
                let r = buf.get_u32_le() as usize;
                let c = buf.get_u32_le() as usize;
                let x = buf.get_f64_le();
                if r >= rows || c >= cols {
                    return Err(TransportError::Malformed("sparse entry out of bounds"));
                }
                m.set(r, c, x);
            }
            Ok(m)
        }
        _ => Err(TransportError::Malformed("unknown matrix encoding")),
    }
}

fn control_frame(tag: u8) -> Bytes {
    let mut buf = BytesMut::with_capacity(1);
    buf.put_u8(tag);
    buf.freeze()
}

fn install_frame(view: &str, block: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len() + 8 + 8 * block.len());
    buf.put_u8(TAG_INSTALL);
    put_name(&mut buf, view);
    put_matrix(&mut buf, block);
    buf.freeze()
}

/// The broadcast frame carrying one factored delta `ΔX = U Vᵀ` for `view`.
///
/// Public so tests (and accounting audits) can recompute a backend's
/// metered byte counts from the *same* serialization the workers receive:
/// the frame length — tag, name, two matrix headers, and the `f64` payloads
/// — is exactly what [`WorkerPool::broadcast_delta`] reports per worker.
pub fn delta_frame(view: &str, u: &Matrix, v: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len() + 16 + 8 * (u.len() + v.len()));
    buf.put_u8(TAG_DELTA);
    put_name(&mut buf, view);
    put_matrix(&mut buf, u);
    put_matrix(&mut buf, v);
    buf.freeze()
}

/// The compressed broadcast frame: same delta as [`delta_frame`], but each
/// factor is flag-encoded and switches to a triplet list of its nonzeros
/// whenever that is the shorter form.
///
/// Public for the same reason as [`delta_frame`]: byte-accounting audits
/// recompute a backend's metered counts from the serialization the workers
/// actually receive. Decoding reconstructs each factor cell for cell, so a
/// worker folding a sparse frame stays bit-identical to one folding the
/// dense frame (only the signs of zeros can differ, which `==` ignores).
pub fn sparse_delta_frame(view: &str, u: &Matrix, v: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len() + 18 + 8 * (u.len() + v.len()));
    buf.put_u8(TAG_DELTA_SPARSE);
    put_name(&mut buf, view);
    put_matrix_auto(&mut buf, u);
    put_matrix_auto(&mut buf, v);
    buf.freeze()
}

fn gather_frame(view: &str) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 4 + view.len());
    buf.put_u8(TAG_GATHER);
    put_name(&mut buf, view);
    buf.freeze()
}

// ---------------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------------

/// One worker's event loop: owns the blocks of every installed view at its
/// grid position `(br, bc)`. Protocol violations (a delta for a view that
/// was never installed, an undecodable frame) are coordinator bugs, not
/// runtime conditions — the worker panics, and the coordinator observes the
/// death as [`TransportError::WorkerDisconnected`] on its next send.
fn worker_loop(br: usize, bc: usize, rx: Receiver<Bytes>, reply: Sender<Bytes>) {
    let mut blocks: BTreeMap<String, Matrix> = BTreeMap::new();
    while let Ok(mut frame) = rx.recv() {
        assert!(frame.has_remaining(), "worker ({br},{bc}): empty frame");
        match frame.get_u8() {
            TAG_SHUTDOWN => break,
            TAG_RESET => blocks.clear(),
            TAG_INSTALL => {
                let name = get_name(&mut frame).expect("install frame: name");
                let block = get_matrix(&mut frame).expect("install frame: block");
                blocks.insert(name, block);
            }
            tag @ (TAG_DELTA | TAG_DELTA_SPARSE) => {
                let name = get_name(&mut frame).expect("delta frame: name");
                let (u, v) = if tag == TAG_DELTA {
                    (
                        get_matrix(&mut frame).expect("delta frame: U"),
                        get_matrix(&mut frame).expect("delta frame: V"),
                    )
                } else {
                    (
                        get_matrix_auto(&mut frame).expect("sparse delta frame: U"),
                        get_matrix_auto(&mut frame).expect("sparse delta frame: V"),
                    )
                };
                let block = blocks
                    .get_mut(&name)
                    .unwrap_or_else(|| panic!("delta for uninstalled view '{name}'"));
                if u.cols() == 0 {
                    continue; // rank-0 delta: nothing to fold
                }
                // Slice this worker's own rows out of the broadcast factors
                // (the same arithmetic as `dist_add_low_rank`, so worker
                // state stays bit-identical to the metered simulation).
                let (bh, bw) = (block.rows(), block.cols());
                let ui = u
                    .submatrix(br * bh, 0, bh, u.cols())
                    .expect("U conforms to the partitioned view");
                let vj = v
                    .submatrix(bc * bw, 0, bw, v.cols())
                    .expect("V conforms to the partitioned view");
                let delta = ui
                    .try_matmul(&vj.transpose())
                    .expect("factor slices conform");
                block
                    .add_assign_from(&delta)
                    .expect("delta block matches view block");
            }
            TAG_GATHER => {
                let name = get_name(&mut frame).expect("gather frame: name");
                let block = blocks
                    .get(&name)
                    .unwrap_or_else(|| panic!("gather of uninstalled view '{name}'"));
                // Replies echo the view name so a coordinator whose reply
                // channel desynchronized (e.g. an aborted earlier gather)
                // detects the stale frame instead of decoding wrong data.
                let mut buf = BytesMut::with_capacity(4 + name.len() + 8 + 8 * block.len());
                put_name(&mut buf, &name);
                put_matrix(&mut buf, block);
                if reply.send(buf.freeze()).is_err() {
                    break; // coordinator went away
                }
            }
            other => panic!("worker ({br},{bc}): unknown frame tag {other}"),
        }
    }
}

struct WorkerLink {
    tx: Sender<Bytes>,
    reply: Receiver<Bytes>,
    handle: Option<JoinHandle<()>>,
}

/// A grid of long-lived worker threads connected by byte-frame channels.
///
/// Dropping the pool sends every worker a shutdown frame and joins the
/// threads.
pub struct WorkerPool {
    grid_rows: usize,
    grid_cols: usize,
    workers: Vec<WorkerLink>,
}

impl WorkerPool {
    /// Spawns one worker thread per cell of a `grid_rows × grid_cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or a thread cannot be spawned.
    pub fn spawn(grid_rows: usize, grid_cols: usize) -> WorkerPool {
        assert!(
            grid_rows > 0 && grid_cols > 0,
            "worker grid must have at least one row and column"
        );
        let mut workers = Vec::with_capacity(grid_rows * grid_cols);
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                let (tx, rx) = mpsc::channel();
                let (reply_tx, reply_rx) = mpsc::channel();
                let handle = std::thread::Builder::new()
                    .name(format!("linview-worker-{br}-{bc}"))
                    .spawn(move || worker_loop(br, bc, rx, reply_tx))
                    .expect("worker thread spawns");
                workers.push(WorkerLink {
                    tx,
                    reply: reply_rx,
                    handle: Some(handle),
                });
            }
        }
        WorkerPool {
            grid_rows,
            grid_cols,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Grid rows.
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid columns.
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    fn send_to(&self, idx: usize, frame: Bytes) -> TransportResult<()> {
        self.workers[idx]
            .tx
            .send(frame)
            .map_err(|_| TransportError::WorkerDisconnected { worker: idx })
    }

    fn send_all(&self, frame: &Bytes) -> TransportResult<()> {
        for idx in 0..self.workers.len() {
            self.send_to(idx, frame.clone())?;
        }
        Ok(())
    }

    /// Clears every worker's installed views (precedes a re-materialize).
    pub fn reset(&self) -> TransportResult<()> {
        self.send_all(&control_frame(TAG_RESET))
    }

    /// Scatter-installs `view`'s blocks, one per worker. The partition grid
    /// must match the pool's. Returns the per-worker frame length in bytes
    /// (blocks are equally sized, so every frame is the same length).
    pub fn install(&self, view: &str, blocks: &DistMatrix) -> TransportResult<u64> {
        assert_eq!(
            (blocks.grid_rows(), blocks.grid_cols()),
            (self.grid_rows, self.grid_cols),
            "partition grid does not match the worker grid"
        );
        let mut frame_len = 0;
        for br in 0..self.grid_rows {
            for bc in 0..self.grid_cols {
                let frame = install_frame(view, blocks.block(br, bc));
                frame_len = frame.len() as u64;
                self.send_to(br * self.grid_cols + bc, frame)?;
            }
        }
        Ok(frame_len)
    }

    /// Broadcasts the factored delta `ΔX = U Vᵀ` for `view` to every
    /// worker, returning the serialized frame length actually sent to each
    /// (the exact per-worker byte cost of the broadcast).
    pub fn broadcast_delta(&self, view: &str, u: &Matrix, v: &Matrix) -> TransportResult<u64> {
        let frame = delta_frame(view, u, v);
        let len = frame.len() as u64;
        self.send_all(&frame)?;
        Ok(len)
    }

    /// Broadcasts the factored delta as a compressed
    /// ([`sparse_delta_frame`]) frame instead of a dense one, returning the
    /// serialized frame length sent to each worker. Workers fold the
    /// reconstructed factors through the same arithmetic as
    /// [`WorkerPool::broadcast_delta`], so the two frames are
    /// interchangeable in everything but wire bytes.
    pub fn broadcast_delta_sparse(
        &self,
        view: &str,
        u: &Matrix,
        v: &Matrix,
    ) -> TransportResult<u64> {
        let frame = sparse_delta_frame(view, u, v);
        let len = frame.len() as u64;
        self.send_all(&frame)?;
        Ok(len)
    }

    /// Gathers `view`'s blocks back from the workers, in row-major grid
    /// order. Doubles as a barrier: every worker has applied all previously
    /// broadcast deltas by the time its reply arrives.
    ///
    /// Replies are tagged with the view name; a reply for a *different*
    /// view (a stale frame left queued by an earlier gather that errored
    /// out mid-collection) surfaces as [`TransportError::Malformed`]
    /// rather than silently returning another view's data.
    pub fn gather(&self, view: &str) -> TransportResult<Vec<Matrix>> {
        self.send_all(&gather_frame(view))?;
        self.workers
            .iter()
            .enumerate()
            .map(|(idx, link)| {
                let mut reply = link
                    .reply
                    .recv()
                    .map_err(|_| TransportError::WorkerDisconnected { worker: idx })?;
                let replied_view = get_name(&mut reply)?;
                if replied_view != view {
                    return Err(TransportError::Malformed("gather reply for another view"));
                }
                get_matrix(&mut reply)
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let frame = control_frame(TAG_SHUTDOWN);
        for link in &self.workers {
            let _ = link.tx.send(frame.clone());
        }
        for link in &mut self.workers {
            if let Some(handle) = link.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("grid_rows", &self.grid_rows)
            .field("grid_cols", &self.grid_cols)
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dist_add_low_rank, Cluster};
    use linview_matrix::ApproxEq;

    #[test]
    fn matrix_codec_round_trips() {
        let m = Matrix::random_uniform(5, 3, 7);
        let mut buf = BytesMut::new();
        put_matrix(&mut buf, &m);
        assert_eq!(buf.len(), 8 + 8 * 15);
        let mut frame = buf.freeze();
        let back = get_matrix(&mut frame).unwrap();
        assert_eq!(back, m);
        assert!(!frame.has_remaining());
    }

    #[test]
    fn truncated_frames_are_malformed_not_panics() {
        let m = Matrix::random_uniform(4, 4, 9);
        let mut buf = BytesMut::new();
        put_matrix(&mut buf, &m);
        let full = buf.freeze();
        let mut truncated = full.slice(0..full.len() - 1);
        assert!(matches!(
            get_matrix(&mut truncated),
            Err(TransportError::Malformed(_))
        ));
        let mut header_only = full.slice(0..6);
        assert!(matches!(
            get_matrix(&mut header_only),
            Err(TransportError::Malformed(_))
        ));
        let mut name = Bytes::from(vec![3, 0, 0, 0, b'a']);
        assert!(matches!(
            get_name(&mut name),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn delta_frame_length_is_deterministic_and_header_exact() {
        let u = Matrix::random_uniform(8, 2, 1);
        let v = Matrix::random_uniform(8, 2, 2);
        let frame = delta_frame("view", &u, &v);
        // tag + (len + "view") + 2 matrix headers + payloads.
        assert_eq!(frame.len(), 1 + 4 + 4 + 16 + 8 * (16 + 16));
        assert_eq!(frame.len(), delta_frame("view", &u, &v).len());
    }

    #[test]
    fn pool_applies_deltas_identically_to_the_metered_simulation() {
        for (gr, gc) in [(1, 1), (2, 2), (2, 4), (3, 1)] {
            let pool = WorkerPool::spawn(gr, gc);
            let m0 = Matrix::random_uniform(24, 24, 11);
            let dm0 = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
            pool.install("X", &dm0).unwrap();

            let u = Matrix::random_uniform(24, 3, 12);
            let v = Matrix::random_uniform(24, 3, 13);
            let sent = pool.broadcast_delta("X", &u, &v).unwrap();
            assert_eq!(sent, delta_frame("X", &u, &v).len() as u64);

            // Reference: the metered (non-moving) kernel on the same input.
            let cluster = Cluster::with_grid(gr, gc);
            let mut reference = dm0.clone();
            dist_add_low_rank(&mut reference, &u, &v, &cluster).unwrap();

            let gathered = pool.gather("X").unwrap();
            for (idx, block) in gathered.iter().enumerate() {
                let (br, bc) = (idx / gc, idx % gc);
                assert_eq!(
                    block,
                    reference.block(br, bc),
                    "worker ({br},{bc}) block diverged on grid {gr}x{gc}"
                );
            }
        }
    }

    #[test]
    fn gather_is_a_barrier_over_many_queued_deltas() {
        let pool = WorkerPool::spawn(2, 2);
        let m0 = Matrix::zeros(8, 8);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        let mut expected = m0;
        for seed in 0..20 {
            let u = Matrix::random_uniform(8, 1, seed);
            let v = Matrix::random_uniform(8, 1, seed + 100);
            pool.broadcast_delta("X", &u, &v).unwrap();
            expected
                .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
                .unwrap();
        }
        let blocks = pool.gather("X").unwrap();
        let mut got = Matrix::zeros(8, 8);
        for (idx, block) in blocks.iter().enumerate() {
            let (br, bc) = (idx / 2, idx % 2);
            got.set_submatrix(br * 4, bc * 4, block).unwrap();
        }
        assert!(got.approx_eq(&expected, 0.0), "pipelined deltas were lost");
    }

    #[test]
    fn reset_forgets_installed_views_and_reinstall_replaces() {
        let pool = WorkerPool::spawn(1, 2);
        let a = Matrix::random_uniform(4, 4, 21);
        let b = Matrix::random_uniform(4, 4, 22);
        pool.install("X", &DistMatrix::from_dense_grid(&a, 1, 2).unwrap())
            .unwrap();
        pool.reset().unwrap();
        pool.install("X", &DistMatrix::from_dense_grid(&b, 1, 2).unwrap())
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks[0], b.submatrix(0, 0, 4, 2).unwrap());
        assert_eq!(blocks[1], b.submatrix(0, 2, 4, 2).unwrap());
    }

    #[test]
    fn flagged_codec_round_trips_both_encodings() {
        // Sparse-preferring: 2 nonzeros in a 6×2 factor (2·2 < 12).
        let mut sp = Matrix::zeros(6, 2);
        sp.set(1, 0, 3.5);
        sp.set(4, 1, -2.25);
        // Dense-preferring: every cell nonzero.
        let dn = Matrix::random_uniform(3, 3, 17);
        for m in [&sp, &dn] {
            let mut buf = BytesMut::new();
            put_matrix_auto(&mut buf, m);
            let mut frame = buf.freeze();
            let back = get_matrix_auto(&mut frame).unwrap();
            assert_eq!(&back, m);
            assert!(!frame.has_remaining());
        }
        assert!(factor_prefers_sparse(&sp));
        assert!(!factor_prefers_sparse(&dn));
        // Exact lengths: sparse = 1+8+4+16·nnz, dense = 1+8+8·len.
        let mut buf = BytesMut::new();
        put_matrix_auto(&mut buf, &sp);
        assert_eq!(buf.len(), 13 + 16 * 2);
        let mut buf = BytesMut::new();
        put_matrix_auto(&mut buf, &dn);
        assert_eq!(buf.len(), 9 + 8 * 9);
    }

    #[test]
    fn sparse_encoding_engages_exactly_when_shorter() {
        // Densities straddling the 2·nnz = len threshold on an 8×4 factor
        // (len 32): nnz 15 → sparse (30 < 32), nnz 16 → dense (32 ≮ 32).
        for (nnz, expect_sparse) in [(15usize, true), (16usize, false)] {
            let mut m = Matrix::zeros(8, 4);
            for i in 0..nnz {
                m.set(i / 4, i % 4, 1.0 + i as f64);
            }
            assert_eq!(factor_prefers_sparse(&m), expect_sparse, "nnz {nnz}");
            let mut buf = BytesMut::new();
            put_matrix_auto(&mut buf, &m);
            let dense_len = 9 + 8 * m.len();
            if expect_sparse {
                assert!(buf.len() < dense_len);
            } else {
                assert_eq!(buf.len(), dense_len);
            }
            let back = get_matrix_auto(&mut buf.freeze()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn truncated_sparse_frames_are_malformed_not_panics() {
        let mut sp = Matrix::zeros(6, 2);
        sp.set(2, 1, 9.0);
        let mut buf = BytesMut::new();
        put_matrix_auto(&mut buf, &sp);
        let full = buf.freeze();
        for cut in [0, 5, full.len() - 1] {
            let mut truncated = full.slice(0..cut);
            assert!(matches!(
                get_matrix_auto(&mut truncated),
                Err(TransportError::Malformed(_))
            ));
        }
        // An out-of-bounds triplet is a decode error, not a panic.
        let mut bad = BytesMut::new();
        bad.put_u8(ENC_SPARSE);
        bad.put_u32_le(2);
        bad.put_u32_le(2);
        bad.put_u32_le(1);
        bad.put_u32_le(7); // row 7 of a 2×2 matrix
        bad.put_u32_le(0);
        bad.put_f64_le(1.0);
        assert!(matches!(
            get_matrix_auto(&mut bad.freeze()),
            Err(TransportError::Malformed(_))
        ));
        // Unknown flag byte likewise.
        let mut unknown = Bytes::from(vec![9u8]);
        assert!(matches!(
            get_matrix_auto(&mut unknown),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn sparse_broadcast_folds_identically_to_dense_and_costs_fewer_bytes() {
        for (gr, gc) in [(1, 1), (2, 2), (2, 4)] {
            let n = 24;
            let m0 = Matrix::random_uniform(n, n, 41);
            let dm0 = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();

            // A sparse rank-2 delta: two touched rows, a handful of cols.
            let mut u = Matrix::zeros(n, 2);
            u.set(3, 0, 1.0);
            u.set(17, 1, 1.0);
            let mut v = Matrix::zeros(n, 2);
            v.set(0, 0, 2.5);
            v.set(9, 0, -1.25);
            v.set(4, 1, 0.75);

            let dense_pool = WorkerPool::spawn(gr, gc);
            dense_pool.install("X", &dm0).unwrap();
            let dense_len = dense_pool.broadcast_delta("X", &u, &v).unwrap();

            let sparse_pool = WorkerPool::spawn(gr, gc);
            sparse_pool.install("X", &dm0).unwrap();
            let sparse_len = sparse_pool.broadcast_delta_sparse("X", &u, &v).unwrap();

            assert!(
                sparse_len < dense_len,
                "sparse frame ({sparse_len}B) not shorter than dense ({dense_len}B)"
            );
            assert_eq!(sparse_len, sparse_delta_frame("X", &u, &v).len() as u64);

            let dense_blocks = dense_pool.gather("X").unwrap();
            let sparse_blocks = sparse_pool.gather("X").unwrap();
            assert_eq!(
                dense_blocks, sparse_blocks,
                "sparse frame diverged from dense on grid {gr}x{gc}"
            );
        }
    }

    #[test]
    fn sparse_frame_with_dense_factors_still_decodes() {
        // Both factors dense-preferring: the tag-5 frame degenerates to
        // flag-prefixed dense payloads and must still fold correctly.
        let pool = WorkerPool::spawn(2, 2);
        let m0 = Matrix::random_uniform(8, 8, 51);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 2).unwrap())
            .unwrap();
        let u = Matrix::random_uniform(8, 2, 52);
        let v = Matrix::random_uniform(8, 2, 53);
        pool.broadcast_delta_sparse("X", &u, &v).unwrap();
        let mut expected = m0;
        expected
            .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        for (idx, block) in blocks.iter().enumerate() {
            let (br, bc) = (idx / 2, idx % 2);
            assert_eq!(block, &expected.submatrix(br * 4, bc * 4, 4, 4).unwrap());
        }
    }

    #[test]
    fn rank_zero_deltas_are_noops() {
        let pool = WorkerPool::spawn(2, 1);
        let m0 = Matrix::random_uniform(6, 6, 31);
        pool.install("X", &DistMatrix::from_dense_grid(&m0, 2, 1).unwrap())
            .unwrap();
        pool.broadcast_delta("X", &Matrix::zeros(6, 0), &Matrix::zeros(6, 0))
            .unwrap();
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks[0], m0.submatrix(0, 0, 3, 6).unwrap());
    }
}
