//! Distributed kernels over partitioned matrices, with metered traffic.

use crate::{Cluster, DistMatrix, Result};
use linview_matrix::{factor_nnz, fold_low_rank, Matrix, MatrixError};

/// Block-SUMMA distributed product `C = A · B`.
///
/// Worker `(i, j)` computes `C_ij = Σ_k A_ik · B_kj`. It owns `A_ij` and
/// `B_ij`, so every `A_ik` with `k ≠ j` and every `B_kj` with `k ≠ i`
/// must be shuffled to it from a peer — `2(g−1)` block transfers per
/// result block. This is the `O(n²)`-bytes-per-product cost distributed
/// re-evaluation pays on every refresh (§6), and it is recorded on
/// `cluster.comm()` as shuffle traffic.
///
/// Requires conforming shapes and identical inner grid splits.
pub fn dist_matmul(a: &DistMatrix, b: &DistMatrix, cluster: &Cluster) -> Result<DistMatrix> {
    if a.cols() != b.rows() || a.grid_cols() != b.grid_rows() {
        return Err(MatrixError::DimMismatch {
            op: "dist_matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    check_geometry("dist_matmul", a, cluster)?;
    check_geometry("dist_matmul", b, cluster)?;
    let inner = a.grid_cols();
    let (bh, _) = a.block_shape();
    let (_, bw) = b.block_shape();
    let mut blocks = Vec::with_capacity(a.grid_rows() * b.grid_cols());
    for i in 0..a.grid_rows() {
        for j in 0..b.grid_cols() {
            let mut acc = Matrix::zeros(bh, bw);
            for k in 0..inner {
                if k != j {
                    cluster.comm().record_shuffle(a.block_bytes());
                }
                if k != i {
                    cluster.comm().record_shuffle(b.block_bytes());
                }
                let prod = a.block(i, k).try_matmul(b.block(k, j))?;
                acc.add_assign_from(&prod)?;
            }
            blocks.push(acc);
        }
    }
    DistMatrix::from_parts(a.rows(), b.cols(), a.grid_rows(), b.grid_cols(), blocks)
}

/// The distributed low-rank view update `M += U · Vᵀ` of §6.
///
/// The skinny factors (`U: n×k`, `V: m×k`) are broadcast whole to every
/// worker — `O(kn)` bytes per worker, metered as broadcast traffic — and
/// each worker then updates its own block from the matching row slices
/// with no shuffle at all: `block_ij += U[rows_i] · V[cols_j]ᵀ`, `O(kn²)`
/// FLOPs across the cluster.
pub fn dist_add_low_rank(
    m: &mut DistMatrix,
    u: &Matrix,
    v: &Matrix,
    cluster: &Cluster,
) -> Result<()> {
    dist_add_low_rank_sparse(m, u, v, cluster, false, false)
}

/// Analytic payload bytes one broadcast factor costs on the wire.
///
/// Dense factors move all `rows·cols` doubles (`8·len` bytes); with
/// `compress` set, a factor whose shorter form is the triplet list —
/// exactly when `2·nnz < len`, the predicate the transport's flagged codec
/// uses — moves `16·nnz` bytes (a 16-byte `(row, col, value)` cell per
/// stored nonzero) instead. This keeps the simulated cluster's byte meter
/// in lockstep with the exact frame lengths the threaded transport reports,
/// minus the fixed per-frame headers.
pub fn factor_wire_bytes(m: &Matrix, compress: bool) -> u64 {
    let nnz = factor_nnz(m);
    if compress && 2 * nnz < m.len() {
        16 * nnz as u64
    } else {
        8 * m.len() as u64
    }
}

/// [`dist_add_low_rank`] with the sparse execution knobs exposed.
///
/// * `sparse` routes every per-block fold through the density-aware
///   [`fold_low_rank`], so blocks hit by a near-basis factor pay
///   `O(nnz·m)` FLOPs instead of the dense `O(k·n·m)` (bit-identical
///   either way).
/// * `compress` meters each broadcast factor at its compressed wire cost
///   ([`factor_wire_bytes`]) instead of its dense footprint.
pub fn dist_add_low_rank_sparse(
    m: &mut DistMatrix,
    u: &Matrix,
    v: &Matrix,
    cluster: &Cluster,
    sparse: bool,
    compress: bool,
) -> Result<()> {
    if u.rows() != m.rows() || v.rows() != m.cols() || u.cols() != v.cols() {
        return Err(MatrixError::DimMismatch {
            op: "dist_add_low_rank",
            lhs: u.shape(),
            rhs: v.shape(),
        });
    }
    check_geometry("dist_add_low_rank", m, cluster)?;
    if u.cols() == 0 {
        // A rank-0 delta carries no update: nothing is broadcast and no
        // message is metered — the same contract as the threaded
        // transport, so per-backend delivery counts stay comparable.
        return Ok(());
    }
    let factor_bytes = factor_wire_bytes(u, compress) + factor_wire_bytes(v, compress);
    for _ in 0..cluster.workers() {
        cluster.comm().record_broadcast(factor_bytes);
    }
    let (bh, bw) = m.block_shape();
    let k = u.cols();
    for i in 0..m.grid_rows() {
        let u_i = u.submatrix(i * bh, 0, bh, k)?;
        for j in 0..m.grid_cols() {
            let v_j = v.submatrix(j * bw, 0, bw, k)?;
            fold_low_rank(m.block_mut(i, j), &u_i, &v_j, sparse)?;
        }
    }
    Ok(())
}

/// The metering model assumes one worker per block, so a kernel fed a
/// matrix whose grid disagrees with the cluster's would charge traffic for
/// a different cluster than the one it reports on. Reject the mix-up.
fn check_geometry(op: &'static str, m: &DistMatrix, cluster: &Cluster) -> Result<()> {
    if m.grid_rows() != cluster.grid_rows() || m.grid_cols() != cluster.grid_cols() {
        return Err(MatrixError::DimMismatch {
            op,
            lhs: (m.grid_rows(), m.grid_cols()),
            rhs: (cluster.grid_rows(), cluster.grid_cols()),
        });
    }
    Ok(())
}

impl DistMatrix {
    /// Assembles a `DistMatrix` from already-partitioned blocks (row-major).
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        grid_rows: usize,
        grid_cols: usize,
        blocks: Vec<Matrix>,
    ) -> Result<DistMatrix> {
        let dense = {
            // Validate geometry by round-tripping through the dense form;
            // blocks are small and this is a simulation, not a hot path.
            let mut out = Matrix::zeros(rows, cols);
            let bh = rows / grid_rows;
            let bw = cols / grid_cols;
            for (idx, b) in blocks.iter().enumerate() {
                let (br, bc) = (idx / grid_cols, idx % grid_cols);
                if b.shape() != (bh, bw) {
                    return Err(MatrixError::DimMismatch {
                        op: "dist blocks",
                        lhs: (bh, bw),
                        rhs: b.shape(),
                    });
                }
                out.set_submatrix(br * bh, bc * bw, b)?;
            }
            out
        };
        DistMatrix::from_dense_grid(&dense, grid_rows, grid_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;

    #[test]
    fn dist_matmul_matches_dense_kernel() {
        for grid in [1usize, 2, 3] {
            let cluster = Cluster::new(grid * grid);
            let a = Matrix::random_spectral(12, 3, 0.9);
            let b = Matrix::random_spectral(12, 4, 0.9);
            let da = DistMatrix::from_dense(&a, grid).unwrap();
            let db = DistMatrix::from_dense(&b, grid).unwrap();
            let dc = dist_matmul(&da, &db, &cluster).unwrap();
            let dense = a.try_matmul(&b).unwrap();
            assert!(
                dc.to_dense().approx_eq(&dense, 1e-9),
                "grid {grid} diverged from the dense kernel"
            );
        }
    }

    #[test]
    fn dist_matmul_rectangular_shapes() {
        // (12×8)·(8×20) over a 2×2 inner-compatible grid.
        let cluster = Cluster::new(4);
        let a = Matrix::random_uniform(12, 8, 5);
        let b = Matrix::random_uniform(8, 20, 6);
        let da = DistMatrix::from_dense_grid(&a, 2, 2).unwrap();
        let db = DistMatrix::from_dense_grid(&b, 2, 2).unwrap();
        let dc = dist_matmul(&da, &db, &cluster).unwrap();
        assert_eq!(dc.shape(), (12, 20));
        assert!(dc.to_dense().approx_eq(&a.try_matmul(&b).unwrap(), 1e-9));
    }

    #[test]
    fn dist_add_low_rank_matches_dense_kernel() {
        for (gr, gc) in [(1, 1), (2, 2), (2, 4), (4, 2)] {
            let cluster = Cluster::with_grid(gr, gc);
            let m0 = Matrix::random_uniform(16, 16, 11);
            let u = Matrix::random_uniform(16, 3, 12);
            let v = Matrix::random_uniform(16, 3, 13);
            let mut dm = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
            dist_add_low_rank(&mut dm, &u, &v, &cluster).unwrap();
            let mut dense = m0;
            dense
                .add_assign_from(&u.try_matmul(&v.transpose()).unwrap())
                .unwrap();
            assert!(
                dm.to_dense().approx_eq(&dense, 1e-9),
                "grid {gr}x{gc} diverged from the dense kernel"
            );
        }
    }

    #[test]
    fn matmul_shuffle_accounting_matches_model() {
        // Per result block: (g-1) A-blocks + (g-1) B-blocks of n²/g² doubles.
        let n = 24;
        for grid in [1usize, 2, 3] {
            let cluster = Cluster::new(grid * grid);
            let a = Matrix::random_uniform(n, n, 21);
            let da = DistMatrix::from_dense(&a, grid).unwrap();
            dist_matmul(&da, &da, &cluster).unwrap();
            let snap = cluster.comm().snapshot();
            let g = grid as u64;
            let block_bytes = ((n / grid) * (n / grid) * 8) as u64;
            assert_eq!(snap.shuffle_msgs, g * g * 2 * (g - 1));
            assert_eq!(snap.shuffle_bytes, snap.shuffle_msgs * block_bytes);
            assert_eq!(snap.broadcast_bytes, 0);
            assert_eq!(snap.broadcast_msgs, 0);
        }
    }

    #[test]
    fn broadcast_accounting_consistent_across_grid_shapes() {
        // One message per worker, each carrying both whole factors.
        let (n, k) = (24, 2);
        for (gr, gc) in [(1, 1), (2, 2), (3, 2), (1, 4)] {
            let cluster = Cluster::with_grid(gr, gc);
            let mut dm =
                DistMatrix::from_dense_grid(&Matrix::random_uniform(n, n, 31), gr, gc).unwrap();
            let u = Matrix::random_uniform(n, k, 32);
            let v = Matrix::random_uniform(n, k, 33);
            dist_add_low_rank(&mut dm, &u, &v, &cluster).unwrap();
            let snap = cluster.comm().snapshot();
            let workers = (gr * gc) as u64;
            assert_eq!(snap.broadcast_msgs, workers);
            assert_eq!(snap.broadcast_bytes, workers * (2 * n * k * 8) as u64);
            assert_eq!(snap.shuffle_bytes, 0);
            assert_eq!(snap.shuffle_msgs, 0);
        }
    }

    #[test]
    fn sparse_fold_variant_is_bit_identical_to_the_dense_kernel() {
        // A basis-column U (density 1/16, below the crossover) must take
        // the sparse per-block path and still produce bit-identical blocks.
        let (n, k) = (16, 2);
        let m0 = Matrix::random_uniform(n, n, 71);
        let mut u = Matrix::zeros(n, k);
        u.set(3, 0, 1.0);
        u.set(11, 1, -2.0);
        let v = Matrix::random_uniform(n, k, 72);
        for (gr, gc) in [(1, 1), (2, 2), (4, 2)] {
            let cluster = Cluster::with_grid(gr, gc);
            let mut dense = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
            dist_add_low_rank(&mut dense, &u, &v, &cluster).unwrap();
            let mut sparse = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
            dist_add_low_rank_sparse(&mut sparse, &u, &v, &cluster, true, true).unwrap();
            assert_eq!(
                sparse.to_dense(),
                dense.to_dense(),
                "sparse folds diverged on grid {gr}x{gc}"
            );
        }
    }

    #[test]
    fn compressed_metering_charges_nnz_scaled_bytes() {
        let (n, k) = (24, 2);
        let mut u = Matrix::zeros(n, k);
        u.set(5, 0, 1.0);
        u.set(17, 1, 1.0);
        let v = Matrix::random_uniform(n, k, 34); // dense → stays 8·len
        assert_eq!(factor_wire_bytes(&u, true), 16 * 2);
        assert_eq!(factor_wire_bytes(&u, false), (8 * n * k) as u64);
        assert_eq!(factor_wire_bytes(&v, true), (8 * n * k) as u64);

        for (gr, gc) in [(1, 1), (2, 2), (3, 2)] {
            let cluster = Cluster::with_grid(gr, gc);
            let mut dm =
                DistMatrix::from_dense_grid(&Matrix::random_uniform(n, n, 35), gr, gc).unwrap();
            dist_add_low_rank_sparse(&mut dm, &u, &v, &cluster, true, true).unwrap();
            let snap = cluster.comm().snapshot();
            let workers = (gr * gc) as u64;
            assert_eq!(snap.broadcast_msgs, workers);
            assert_eq!(
                snap.broadcast_bytes,
                workers * (16 * 2 + (8 * n * k) as u64),
                "compressed byte model broke on grid {gr}x{gc}"
            );
        }
    }

    #[test]
    fn factor_wire_bytes_threshold_is_exact() {
        // len = 32: nnz 15 compresses (30 < 32), nnz 16 does not.
        for (nnz, compressed) in [(15usize, true), (16usize, false)] {
            let mut m = Matrix::zeros(8, 4);
            for i in 0..nnz {
                m.set(i / 4, i % 4, 1.0);
            }
            let want = if compressed { 16 * nnz as u64 } else { 8 * 32 };
            assert_eq!(factor_wire_bytes(&m, true), want, "nnz {nnz}");
        }
    }

    #[test]
    fn rank_zero_update_moves_and_meters_nothing() {
        let cluster = Cluster::new(4);
        let m0 = Matrix::random_uniform(8, 8, 91);
        let mut dm = DistMatrix::from_dense(&m0, 2).unwrap();
        dist_add_low_rank(
            &mut dm,
            &Matrix::zeros(8, 0),
            &Matrix::zeros(8, 0),
            &cluster,
        )
        .unwrap();
        assert_eq!(cluster.comm().snapshot(), crate::CommSnapshot::default());
        assert!(dm.to_dense().approx_eq(&m0, 0.0));
    }

    #[test]
    fn reset_returns_previous_snapshot_and_zeroes() {
        let cluster = Cluster::new(4);
        let a = Matrix::random_uniform(8, 8, 41);
        let da = DistMatrix::from_dense(&a, 2).unwrap();
        dist_matmul(&da, &da, &cluster).unwrap();
        let before = cluster.comm().reset();
        assert!(before.shuffle_bytes > 0);
        assert_eq!(cluster.comm().snapshot(), crate::CommSnapshot::default());
    }

    #[test]
    fn indivisible_partition_is_rejected() {
        let m = Matrix::random_uniform(10, 10, 51);
        assert!(DistMatrix::from_dense(&m, 3).is_err());
        assert!(DistMatrix::from_dense(&m, 0).is_err());
        assert!(DistMatrix::from_dense_grid(&m, 2, 3).is_err());
    }

    #[test]
    fn mismatched_shapes_are_rejected() {
        let cluster = Cluster::new(4);
        let a = DistMatrix::from_dense(&Matrix::random_uniform(8, 8, 61), 2).unwrap();
        let b = DistMatrix::from_dense(&Matrix::random_uniform(10, 10, 62), 2).unwrap();
        assert!(dist_matmul(&a, &b, &cluster).is_err());

        let mut m = a.clone();
        let u = Matrix::random_uniform(6, 2, 63); // wrong row count
        let v = Matrix::random_uniform(8, 2, 64);
        assert!(dist_add_low_rank(&mut m, &u, &v, &cluster).is_err());
    }

    #[test]
    fn non_square_worker_counts_are_fallible_not_fatal() {
        assert!(Cluster::try_new(8).is_err());
        assert!(Cluster::try_new(0).is_err());
        assert_eq!(Cluster::try_new(9).unwrap().grid(), 3);
    }

    #[test]
    fn cluster_grid_mismatch_is_rejected() {
        // A 3×3-partitioned matrix fed to a 2×2 cluster would meter
        // traffic for the wrong cluster; both kernels must refuse.
        let cluster = Cluster::new(4);
        let m = Matrix::random_uniform(12, 12, 81);
        let dm = DistMatrix::from_dense(&m, 3).unwrap();
        assert!(dist_matmul(&dm, &dm, &cluster).is_err());
        let mut dm2 = dm.clone();
        let u = Matrix::random_uniform(12, 2, 82);
        let v = Matrix::random_uniform(12, 2, 83);
        assert!(dist_add_low_rank(&mut dm2, &u, &v, &cluster).is_err());
        assert_eq!(cluster.comm().snapshot(), crate::CommSnapshot::default());
    }

    #[test]
    fn to_dense_roundtrips() {
        let m = Matrix::random_uniform(12, 18, 71);
        let dm = DistMatrix::from_dense_grid(&m, 3, 2).unwrap();
        assert_eq!(dm.block_shape(), (4, 9));
        assert!(dm.to_dense().approx_eq(&m, 0.0));
    }
}
