//! Communication metering.
//!
//! Two traffic classes, mirroring the §6 cost analysis:
//!
//! * **shuffle** — worker-to-worker block movement (what distributed
//!   re-evaluation pays on every matrix product);
//! * **broadcast** — coordinator-to-worker factor distribution (the only
//!   traffic the incremental path generates).
//!
//! Counters are relaxed atomics so kernels can meter through a shared
//! `&Cluster` without locking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative communication counters for one [`crate::Cluster`].
#[derive(Debug, Default)]
pub struct CommStats {
    broadcast_bytes: AtomicU64,
    broadcast_msgs: AtomicU64,
    shuffle_bytes: AtomicU64,
    shuffle_msgs: AtomicU64,
}

impl CommStats {
    /// Records one broadcast message of `bytes` payload.
    pub fn record_broadcast(&self, bytes: u64) {
        self.broadcast_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.broadcast_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shuffled (worker-to-worker) message of `bytes` payload.
    pub fn record_shuffle(&self, bytes: u64) {
        self.shuffle_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.shuffle_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            broadcast_msgs: self.broadcast_msgs.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            shuffle_msgs: self.shuffle_msgs.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters, returning their values from just before the
    /// reset.
    pub fn reset(&self) -> CommSnapshot {
        CommSnapshot {
            broadcast_bytes: self.broadcast_bytes.swap(0, Ordering::Relaxed),
            broadcast_msgs: self.broadcast_msgs.swap(0, Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.swap(0, Ordering::Relaxed),
            shuffle_msgs: self.shuffle_msgs.swap(0, Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`CommStats`] meter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommSnapshot {
    /// Bytes delivered by coordinator-to-worker broadcasts.
    pub broadcast_bytes: u64,
    /// Number of broadcast deliveries (one per receiving worker).
    pub broadcast_msgs: u64,
    /// Bytes moved between workers in shuffles.
    pub shuffle_bytes: u64,
    /// Number of shuffled block transfers.
    pub shuffle_msgs: u64,
}

impl CommSnapshot {
    /// Total traffic in bytes, both classes combined.
    pub fn total_bytes(&self) -> u64 {
        self.broadcast_bytes + self.shuffle_bytes
    }

    /// Total message count, both classes combined.
    pub fn total_msgs(&self) -> u64 {
        self.broadcast_msgs + self.shuffle_msgs
    }
}
