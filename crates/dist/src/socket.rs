//! Multi-process transport: the byte-frame protocol over TCP or Unix
//! sockets.
//!
//! [`SocketTransport`] is the coordinator's side: one connection per grid
//! worker, each carrying length-prefixed [`transport`](crate::transport)
//! frames. [`serve_worker`] is the worker's side: an accept loop that runs
//! the same [`WorkerState`](crate::transport) frame machine as the
//! in-process channel workers, so a worker *process* is bit-identical to a
//! worker *thread* (the `linview worker` subcommand is a thin wrapper over
//! it). [`WorkerServer`] hosts that loop on a thread inside the current
//! process — the self-hosted deployment used by tests and the CLI's
//! default socket mode — and exposes an abrupt [`WorkerServer::kill`] for
//! fault-injection.
//!
//! # Wire format
//!
//! Every frame (both directions) is `u32` little-endian length followed by
//! that many payload bytes; payloads are exactly the channel transport's
//! frames. Lengths above [`MAX_FRAME_LEN`] are rejected before allocation,
//! so a corrupt or hostile length header cannot make either side allocate
//! unboundedly. A connection opens with a handshake: the coordinator sends
//! `"LVWK"`, a protocol version, and the worker's grid position; the worker
//! echoes `"LVOK"` and the version. Everything is validated — a peer that
//! answers wrongly is a [`TransportError::Handshake`], not undefined
//! behavior.
//!
//! # Failure model
//!
//! Reads on the coordinator side carry a timeout, so a dead or stalled
//! peer surfaces as [`TransportError::Timeout`] instead of blocking a
//! gather forever. Any I/O error drops that worker's connection; a
//! subsequent [`Transport::revive`] redials with bounded
//! exponential backoff ([`SocketConfig`]), which is how recovery waits out
//! a worker that is being restarted. Reconnected workers start empty —
//! exactly like a freshly spawned process — and the caller re-installs
//! state (a re-materialize, or the engine's checkpoint/replay recovery).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::transport::{
    control_frame, FrameOutcome, Transport, TransportError, TransportResult, WorkerState,
    TAG_SHUTDOWN,
};

/// Largest frame either side will accept: 1 GiB. A length header above
/// this is rejected *before* allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

const HELLO_MAGIC: &[u8; 4] = b"LVWK";
const ACK_MAGIC: &[u8; 4] = b"LVOK";
const PROTOCOL_VERSION: u32 = 1;

/// Where one worker listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerAddr {
    /// A TCP endpoint, e.g. `127.0.0.1:7401`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl PeerAddr {
    /// Parses `tcp:HOST:PORT` or `unix:/path/to.sock` (a bare string
    /// containing `/` is treated as a Unix path).
    pub fn parse(spec: &str) -> TransportResult<PeerAddr> {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            if rest.rsplit_once(':').is_none() {
                return Err(TransportError::Config(format!(
                    "tcp address '{rest}' is not HOST:PORT"
                )));
            }
            Ok(PeerAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = spec.strip_prefix("unix:") {
            Ok(PeerAddr::Unix(PathBuf::from(rest)))
        } else if spec.contains('/') {
            Ok(PeerAddr::Unix(PathBuf::from(spec)))
        } else {
            Err(TransportError::Config(format!(
                "address '{spec}' is neither tcp:HOST:PORT nor unix:/path"
            )))
        }
    }
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerAddr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
            PeerAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Dial/read behavior of a [`SocketTransport`].
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// How many connection attempts before giving up on a peer.
    pub connect_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub backoff_start: Duration,
    /// Upper bound on the per-retry backoff.
    pub backoff_cap: Duration,
    /// Reply-read timeout; `None` blocks forever (not recommended — a dead
    /// peer then hangs gathers).
    pub read_timeout: Option<Duration>,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            connect_attempts: 10,
            backoff_start: Duration::from_millis(30),
            backoff_cap: Duration::from_millis(500),
            read_timeout: Some(Duration::from_secs(10)),
        }
    }
}

// ---------------------------------------------------------------------------
// Streams and framing
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn write_frame(stream: &mut Stream, frame: &[u8]) -> io::Result<()> {
    debug_assert!(frame.len() as u64 <= MAX_FRAME_LEN as u64);
    let mut buf = Vec::with_capacity(4 + frame.len());
    buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Writes a whole batch of frames as one `write_all` — the per-stage frame
/// batching that keeps a flush round to a single syscall per worker.
fn write_frame_batch(stream: &mut Stream, frames: &[Bytes]) -> io::Result<()> {
    let total: usize = frames.iter().map(|f| 4 + f.len()).sum();
    let mut buf = Vec::with_capacity(total);
    for frame in frames {
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(frame);
    }
    stream.write_all(&buf)?;
    stream.flush()
}

fn read_frame(stream: &mut Stream) -> io::Result<Bytes> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

fn map_io(worker: usize, e: io::Error) -> TransportError {
    if is_timeout(&e) {
        TransportError::Timeout { worker }
    } else if is_disconnect(&e) {
        TransportError::WorkerDisconnected { worker }
    } else {
        TransportError::Io {
            worker,
            message: e.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

fn hello_frame(grid_rows: usize, grid_cols: usize, br: usize, bc: usize) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 4 * 5);
    buf.put_slice(HELLO_MAGIC);
    buf.put_u32_le(PROTOCOL_VERSION);
    buf.put_u32_le(grid_rows as u32);
    buf.put_u32_le(grid_cols as u32);
    buf.put_u32_le(br as u32);
    buf.put_u32_le(bc as u32);
    buf.freeze()
}

fn ack_frame() -> Bytes {
    let mut buf = BytesMut::with_capacity(8);
    buf.put_slice(ACK_MAGIC);
    buf.put_u32_le(PROTOCOL_VERSION);
    buf.freeze()
}

struct Hello {
    br: usize,
    bc: usize,
}

fn parse_hello(mut frame: Bytes) -> Result<Hello, String> {
    if frame.remaining() != 4 + 4 * 5 {
        return Err(format!(
            "hello frame has {} bytes, expected 24",
            frame.len()
        ));
    }
    let mut magic = [0u8; 4];
    frame.copy_to_slice(&mut magic);
    if &magic != HELLO_MAGIC {
        return Err("bad hello magic (not a linview coordinator?)".to_string());
    }
    let version = frame.get_u32_le();
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version {version}, this worker speaks {PROTOCOL_VERSION}"
        ));
    }
    let _grid_rows = frame.get_u32_le();
    let _grid_cols = frame.get_u32_le();
    let br = frame.get_u32_le() as usize;
    let bc = frame.get_u32_le() as usize;
    Ok(Hello { br, bc })
}

fn check_ack(mut frame: Bytes) -> Result<(), String> {
    if frame.remaining() != 8 {
        return Err(format!("ack frame has {} bytes, expected 8", frame.len()));
    }
    let mut magic = [0u8; 4];
    frame.copy_to_slice(&mut magic);
    if &magic != ACK_MAGIC {
        return Err("bad ack magic (not a linview worker?)".to_string());
    }
    let version = frame.get_u32_le();
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "worker speaks protocol version {version}, expected {PROTOCOL_VERSION}"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

fn connect_once(addr: &PeerAddr) -> io::Result<Stream> {
    match addr {
        PeerAddr::Tcp(hostport) => Ok(Stream::Tcp(TcpStream::connect(hostport.as_str())?)),
        PeerAddr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
    }
}

fn dial(
    worker: usize,
    addr: &PeerAddr,
    grid: (usize, usize),
    config: &SocketConfig,
) -> TransportResult<Stream> {
    let (grid_rows, grid_cols) = grid;
    let (br, bc) = (worker / grid_cols, worker % grid_cols);
    let mut backoff = config.backoff_start;
    let mut last_err = String::new();
    for attempt in 0..config.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(config.backoff_cap);
        }
        match connect_once(addr) {
            Ok(mut stream) => {
                stream
                    .set_read_timeout(config.read_timeout)
                    .map_err(|e| map_io(worker, e))?;
                write_frame(&mut stream, &hello_frame(grid_rows, grid_cols, br, bc))
                    .map_err(|e| map_io(worker, e))?;
                let ack = match read_frame(&mut stream) {
                    Ok(ack) => ack,
                    Err(e) if is_timeout(&e) || is_disconnect(&e) => {
                        // Listener accepted but never answered (flaky peer,
                        // wrong service): that attempt failed, keep retrying
                        // under the same bounded backoff.
                        last_err = format!("no handshake ack: {e}");
                        continue;
                    }
                    Err(e) => return Err(map_io(worker, e)),
                };
                check_ack(ack).map_err(|message| TransportError::Handshake { worker, message })?;
                return Ok(stream);
            }
            Err(e) => last_err = e.to_string(),
        }
    }
    Err(TransportError::Io {
        worker,
        message: format!(
            "connect to {addr} failed after {} attempts: {last_err}",
            config.connect_attempts.max(1)
        ),
    })
}

/// The byte-frame protocol carried over one socket per worker.
///
/// See the [module docs](self) for the wire format and failure model. All
/// operations take `&self`; each peer's connection sits behind its own
/// mutex, and any I/O error tears that connection down so the failure mode
/// is always "dead peer", never "desynchronized stream".
pub struct SocketTransport {
    addrs: Vec<PeerAddr>,
    grid: (usize, usize),
    config: SocketConfig,
    peers: Vec<Mutex<Option<Stream>>>,
}

impl SocketTransport {
    /// Connects to one worker per address, in row-major grid order, with
    /// bounded backoff per peer. `addrs.len()` must equal
    /// `grid_rows * grid_cols`.
    pub fn connect(
        grid_rows: usize,
        grid_cols: usize,
        addrs: Vec<PeerAddr>,
        config: SocketConfig,
    ) -> TransportResult<SocketTransport> {
        if grid_rows == 0 || grid_cols == 0 {
            return Err(TransportError::Config(
                "worker grid must have at least one row and column".to_string(),
            ));
        }
        if addrs.len() != grid_rows * grid_cols {
            return Err(TransportError::Config(format!(
                "{} worker addresses cannot form a {grid_rows}x{grid_cols} grid",
                addrs.len()
            )));
        }
        let mut peers = Vec::with_capacity(addrs.len());
        for (worker, addr) in addrs.iter().enumerate() {
            let stream = dial(worker, addr, (grid_rows, grid_cols), &config)?;
            peers.push(Mutex::new(Some(stream)));
        }
        Ok(SocketTransport {
            addrs,
            grid: (grid_rows, grid_cols),
            config,
            peers,
        })
    }

    /// The worker addresses, row-major.
    pub fn addrs(&self) -> &[PeerAddr] {
        &self.addrs
    }

    /// Drops worker `worker`'s connection without any protocol goodbye —
    /// from the worker's side this is indistinguishable from a coordinator
    /// crash; from the coordinator's side the worker is now dead until
    /// [`Transport::revive`].
    pub fn disconnect(&self, worker: usize) {
        if let Some(stream) = self.peers[worker].lock().take() {
            stream.shutdown();
        }
    }

    fn with_peer<R>(
        &self,
        worker: usize,
        op: impl FnOnce(&mut Stream) -> io::Result<R>,
    ) -> TransportResult<R> {
        let mut slot = self.peers[worker].lock();
        let stream = slot
            .as_mut()
            .ok_or(TransportError::WorkerDisconnected { worker })?;
        match op(stream) {
            Ok(value) => Ok(value),
            Err(e) => {
                // Any I/O failure (including a timeout — the stream is now
                // desynchronized) kills the connection; revive() redials.
                if let Some(dead) = slot.take() {
                    dead.shutdown();
                }
                Err(map_io(worker, e))
            }
        }
    }
}

impl Transport for SocketTransport {
    fn label(&self) -> &'static str {
        "socket"
    }

    fn workers(&self) -> usize {
        self.peers.len()
    }

    fn send(&self, worker: usize, frame: Bytes) -> TransportResult<()> {
        self.with_peer(worker, |stream| write_frame(stream, &frame))
    }

    fn send_batch(&self, worker: usize, frames: &[Bytes]) -> TransportResult<()> {
        self.with_peer(worker, |stream| write_frame_batch(stream, frames))
    }

    fn recv_reply(&self, worker: usize) -> TransportResult<Bytes> {
        self.with_peer(worker, read_frame)
    }

    fn revive(&mut self) -> TransportResult<usize> {
        let mut revived = 0;
        for worker in 0..self.peers.len() {
            if self.peers[worker].lock().is_some() {
                continue;
            }
            let stream = dial(worker, &self.addrs[worker], self.grid, &self.config)?;
            *self.peers[worker].lock() = Some(stream);
            revived += 1;
        }
        Ok(revived)
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        let frame = control_frame(TAG_SHUTDOWN);
        for worker in 0..self.peers.len() {
            let _ = self.send(worker, frame.clone());
        }
    }
}

impl fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocketTransport")
            .field("addrs", &self.addrs)
            .field("grid", &self.grid)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// A bound listener for one worker (TCP or Unix).
#[derive(Debug)]
pub enum WorkerListener {
    /// Listening on TCP.
    Tcp(TcpListener),
    /// Listening on a Unix-domain socket path.
    Unix(UnixListener),
}

/// Binds a listener at `addr`.
///
/// For Unix sockets the bind is attempted *first*; only when the path is
/// already taken is the existing socket probed with a connection attempt.
/// A live socket (the probe connects) means another worker owns the
/// address, and the bind fails with `AddrInUse` — it must NOT be unlinked
/// out from under its owner. A dead socket (the probe is refused) is the
/// stale file a killed worker left behind: it is unlinked and the bind
/// retried, so `linview worker` restarts cleanly on the same address.
///
/// The old unlink-before-bind order had a race: two workers launched on
/// the same path could each unlink the other's freshly bound live socket,
/// leaving a coordinator dialing a listener whose filesystem name was
/// gone.
pub fn bind(addr: &PeerAddr) -> io::Result<WorkerListener> {
    match addr {
        PeerAddr::Tcp(hostport) => Ok(WorkerListener::Tcp(TcpListener::bind(hostport.as_str())?)),
        PeerAddr::Unix(path) => match UnixListener::bind(path) {
            Ok(l) => Ok(WorkerListener::Unix(l)),
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                if UnixStream::connect(path).is_ok() {
                    // A live worker answers on this path: surface the
                    // collision instead of stealing the address.
                    return Err(e);
                }
                std::fs::remove_file(path)?;
                Ok(WorkerListener::Unix(UnixListener::bind(path)?))
            }
            Err(e) => Err(e),
        },
    }
}

impl WorkerListener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            WorkerListener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
            WorkerListener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
        }
    }

    /// The locally bound address (resolves `port 0` for TCP).
    pub fn local_addr(&self) -> io::Result<PeerAddr> {
        match self {
            WorkerListener::Tcp(l) => Ok(PeerAddr::Tcp(l.local_addr()?.to_string())),
            WorkerListener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(PeerAddr::Unix(path.to_path_buf()))
            }
        }
    }
}

/// One coordinator session: handshake, then the frame loop over a fresh
/// [`WorkerState`]. Returns `Ok(true)` on a protocol shutdown, `Ok(false)`
/// when the coordinator vanished (EOF / connection error) — the caller
/// goes back to accepting either way.
fn handle_session(mut stream: Stream) -> io::Result<bool> {
    let hello = match read_frame(&mut stream).map(parse_hello)? {
        Ok(hello) => hello,
        Err(reason) => {
            // A bad handshake is not worth a reply the peer could misread;
            // drop the connection and report locally.
            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
        }
    };
    write_frame(&mut stream, &ack_frame())?;
    let mut state = WorkerState::new(hello.br, hello.bc);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(e) if is_disconnect(&e) => return Ok(false),
            Err(e) => return Err(e),
        };
        match state.handle(frame) {
            FrameOutcome::Continue => {}
            FrameOutcome::Reply(reply) => write_frame(&mut stream, &reply)?,
            FrameOutcome::Shutdown => return Ok(true),
        }
    }
}

/// Options for [`serve_worker`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Exit after the first session ends with a protocol shutdown instead
    /// of accepting the next coordinator.
    pub once: bool,
}

/// Runs a worker's accept loop on the current thread: one coordinator
/// session at a time, each with fresh state (a reconnecting coordinator
/// always re-installs, so carrying blocks across sessions would only mask
/// bugs). Returns when `once` is set and a session ends with a protocol
/// shutdown. This is the body of the `linview worker` subcommand.
pub fn serve_worker(listener: WorkerListener, options: ServeOptions) -> io::Result<()> {
    loop {
        let stream = listener.accept()?;
        match handle_session(stream) {
            Ok(clean_shutdown) => {
                if options.once && clean_shutdown {
                    return Ok(());
                }
            }
            Err(_) => {
                // A failed session (bad handshake, I/O error mid-frame)
                // never takes the worker down; the next coordinator gets a
                // fresh session.
            }
        }
    }
}

struct ServerShared {
    stop: AtomicBool,
    active: Mutex<Option<Stream>>,
}

/// A worker accept loop hosted on a thread in this process — the
/// self-hosted deployment used by tests and the CLI's default socket mode.
///
/// [`WorkerServer::kill`] tears the worker down *abruptly* (active
/// connection reset, no protocol goodbye): the coordinator-visible
/// behavior is identical to `SIGKILL` of a worker process, which is what
/// the fault-tolerance suite injects. A killed server's address can be
/// re-bound by a fresh `WorkerServer::spawn` to model a restart.
pub struct WorkerServer {
    addr: PeerAddr,
    shared: Arc<ServerShared>,
    handle: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Binds `addr` and serves sessions on a background thread.
    pub fn spawn(addr: &PeerAddr) -> io::Result<WorkerServer> {
        let listener = bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            stop: AtomicBool::new(false),
            active: Mutex::new(None),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("linview-socket-worker".to_string())
            .spawn(move || {
                while !thread_shared.stop.load(Ordering::SeqCst) {
                    let Ok(stream) = listener.accept() else {
                        break;
                    };
                    if thread_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    // Keep a clone so kill() can reset the live session.
                    *thread_shared.active.lock() = stream.try_clone().ok();
                    let _ = handle_session(stream);
                    *thread_shared.active.lock() = None;
                }
            })?;
        Ok(WorkerServer {
            addr,
            shared,
            handle: Some(handle),
        })
    }

    /// Where this worker listens.
    pub fn addr(&self) -> &PeerAddr {
        &self.addr
    }

    fn shutdown_thread(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(stream) = self.shared.active.lock().take() {
            stream.shutdown();
        }
        // Unblock the accept() call; the loop re-checks the stop flag
        // before serving whatever this dummy connection is.
        let _ = connect_once(&self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        if let PeerAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Kills the worker abruptly: the active session's connection is reset
    /// mid-protocol and the listener goes away — the in-process equivalent
    /// of `SIGKILL`ing a `linview worker` process.
    pub fn kill(mut self) {
        self.shutdown_thread();
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown_thread();
    }
}

impl fmt::Debug for WorkerServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Spawns `grid_rows * grid_cols` self-hosted workers on fresh Unix-domain
/// socket paths under the system temp directory, returning the servers and
/// their addresses (row-major). The convenience constructor behind the
/// CLI's self-hosted socket mode and the test suites.
pub fn spawn_local_grid(
    grid_rows: usize,
    grid_cols: usize,
    tag: &str,
) -> io::Result<(Vec<WorkerServer>, Vec<PeerAddr>)> {
    let pid = std::process::id();
    let mut servers = Vec::with_capacity(grid_rows * grid_cols);
    let mut addrs = Vec::with_capacity(grid_rows * grid_cols);
    for idx in 0..grid_rows * grid_cols {
        let path = std::env::temp_dir().join(format!("lv-{tag}-{pid}-{idx}.sock"));
        let server = WorkerServer::spawn(&PeerAddr::Unix(path))?;
        addrs.push(server.addr().clone());
        servers.push(server);
    }
    Ok((servers, addrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FramePool;
    use crate::DistMatrix;
    use linview_matrix::Matrix;

    fn local_pool(
        gr: usize,
        gc: usize,
        tag: &str,
    ) -> (Vec<WorkerServer>, FramePool<SocketTransport>) {
        let (servers, addrs) = spawn_local_grid(gr, gc, tag).unwrap();
        let transport = SocketTransport::connect(gr, gc, addrs, SocketConfig::default()).unwrap();
        (
            servers,
            FramePool::from_transport(gr, gc, transport).unwrap(),
        )
    }

    #[test]
    fn addr_parsing_round_trips_and_rejects_garbage() {
        assert_eq!(
            PeerAddr::parse("tcp:127.0.0.1:7401").unwrap(),
            PeerAddr::Tcp("127.0.0.1:7401".to_string())
        );
        assert_eq!(
            PeerAddr::parse("unix:/tmp/w0.sock").unwrap(),
            PeerAddr::Unix(PathBuf::from("/tmp/w0.sock"))
        );
        assert_eq!(
            PeerAddr::parse("/tmp/w1.sock").unwrap(),
            PeerAddr::Unix(PathBuf::from("/tmp/w1.sock"))
        );
        assert!(matches!(
            PeerAddr::parse("carrier-pigeon"),
            Err(TransportError::Config(_))
        ));
        assert!(matches!(
            PeerAddr::parse("tcp:no-port"),
            Err(TransportError::Config(_))
        ));
        assert_eq!(
            PeerAddr::parse("unix:/tmp/w0.sock").unwrap().to_string(),
            "unix:/tmp/w0.sock"
        );
    }

    #[test]
    fn socket_pool_matches_the_channel_pool_bit_for_bit() {
        let (gr, gc) = (2, 2);
        let (_servers, pool) = local_pool(gr, gc, "bitident");
        let channel_pool = crate::transport::WorkerPool::spawn(gr, gc);

        let m0 = Matrix::random_uniform(16, 16, 301);
        let dm0 = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
        pool.install("X", &dm0).unwrap();
        channel_pool.install("X", &dm0).unwrap();

        for seed in 0..6 {
            let u = Matrix::random_uniform(16, 2, 400 + seed);
            let v = Matrix::random_uniform(16, 2, 500 + seed);
            let socket_len = pool.broadcast_delta("X", &u, &v).unwrap();
            let channel_len = channel_pool.broadcast_delta("X", &u, &v).unwrap();
            assert_eq!(socket_len, channel_len, "frame lengths diverged");
        }
        assert_eq!(pool.gather("X").unwrap(), channel_pool.gather("X").unwrap());
    }

    #[test]
    fn batched_sends_fold_identically_to_singles() {
        let (gr, gc) = (1, 2);
        let (_servers, pool) = local_pool(gr, gc, "batch");
        let m0 = Matrix::random_uniform(8, 8, 311);
        let dm0 = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
        pool.install("X", &dm0).unwrap();
        let frames: Vec<Bytes> = (0..5)
            .map(|seed| {
                let u = Matrix::random_uniform(8, 1, 600 + seed);
                let v = Matrix::random_uniform(8, 1, 700 + seed);
                crate::transport::delta_frame("X", &u, &v)
            })
            .collect();
        for result in pool.broadcast_frames(&frames) {
            result.unwrap();
        }

        let reference = crate::transport::WorkerPool::spawn(gr, gc);
        reference.install("X", &dm0).unwrap();
        for frame in &frames {
            reference.transport().send(0, frame.clone()).unwrap();
            reference.transport().send(1, frame.clone()).unwrap();
        }
        assert_eq!(pool.gather("X").unwrap(), reference.gather("X").unwrap());
    }

    #[test]
    fn dead_peer_is_a_typed_error_then_revive_reconnects() {
        let (gr, gc) = (1, 2);
        let (servers, mut pool) = local_pool(gr, gc, "revive");
        let m0 = Matrix::random_uniform(8, 8, 321);
        let dm0 = DistMatrix::from_dense_grid(&m0, gr, gc).unwrap();
        pool.install("X", &dm0).unwrap();

        // Kill worker 1 abruptly and restart a fresh server on its address.
        let mut servers = servers;
        let addr = servers[1].addr().clone();
        servers.remove(1).kill();
        let err = pool.gather("X").unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::WorkerDisconnected { worker: 1 }
                    | TransportError::Timeout { worker: 1 }
                    | TransportError::Io { worker: 1, .. }
            ),
            "unexpected error for the dead peer: {err:?}"
        );
        servers.push(WorkerServer::spawn(&addr).unwrap());

        assert_eq!(pool.revive().unwrap(), 1);
        pool.reset().unwrap();
        pool.install("X", &dm0).unwrap();
        let blocks = pool.gather("X").unwrap();
        assert_eq!(blocks[1], m0.submatrix(0, 4, 8, 4).unwrap());
    }

    #[test]
    fn binding_a_live_socket_path_fails_without_unlinking_it() {
        // Two workers racing the same path: the second bind must lose with
        // AddrInUse and must NOT unlink the first worker's live socket
        // (the old unlink-before-bind order did exactly that).
        let path = std::env::temp_dir().join(format!("lv-collide-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let addr = PeerAddr::Unix(path.clone());
        let first = WorkerServer::spawn(&addr).unwrap();
        let err = WorkerServer::spawn(&addr).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err:?}");
        // The loser left the winner fully intact: the socket file is still
        // there and the worker still completes a handshake on it.
        assert!(path.exists(), "collision unlinked the live socket");
        let mut stream = connect_once(&addr).unwrap();
        write_frame(&mut stream, &hello_frame(1, 1, 0, 0)).unwrap();
        check_ack(read_frame(&mut stream).unwrap()).unwrap();
        drop(stream);
        first.kill();
    }

    #[test]
    fn stale_socket_file_is_reclaimed_on_bind() {
        // A SIGKILLed worker leaves its socket file behind with nobody
        // accepting: the connect-probe fails, so the next bind reclaims
        // the address.
        let path = std::env::temp_dir().join(format!("lv-stale-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        drop(UnixListener::bind(&path).unwrap()); // dead listener, file remains
        assert!(path.exists(), "the stale file must exist for the test");
        let addr = PeerAddr::Unix(path);
        let server = WorkerServer::spawn(&addr).unwrap();
        let mut stream = connect_once(&addr).unwrap();
        write_frame(&mut stream, &hello_frame(1, 1, 0, 0)).unwrap();
        check_ack(read_frame(&mut stream).unwrap()).unwrap();
        drop(stream);
        server.kill();
    }

    #[test]
    fn connect_to_nothing_fails_bounded_not_forever() {
        let path = std::env::temp_dir().join(format!("lv-nobody-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = SocketConfig {
            connect_attempts: 3,
            backoff_start: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(10),
            read_timeout: Some(Duration::from_millis(200)),
        };
        let started = std::time::Instant::now();
        let err = SocketTransport::connect(1, 1, vec![PeerAddr::Unix(path)], config).unwrap_err();
        assert!(
            matches!(err, TransportError::Io { worker: 0, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("after 3 attempts"));
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn reconnect_backoff_rides_out_a_late_listener() {
        let path = std::env::temp_dir().join(format!("lv-late-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let addr = PeerAddr::Unix(path);
        // The listener only appears after a delay; bounded backoff must
        // ride it out instead of failing fast or spinning.
        let spawn_addr = addr.clone();
        let spawner = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            WorkerServer::spawn(&spawn_addr).unwrap()
        });
        let config = SocketConfig {
            connect_attempts: 30,
            backoff_start: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(50),
            read_timeout: Some(Duration::from_secs(2)),
        };
        let transport = SocketTransport::connect(1, 1, vec![addr], config).unwrap();
        assert_eq!(transport.workers(), 1);
        drop(transport);
        spawner.join().unwrap().kill();
    }

    #[test]
    fn oversized_length_header_is_rejected_before_allocation() {
        let (_servers, addrs) = spawn_local_grid(1, 1, "oversize").unwrap();
        // Speak raw bytes: a valid-looking connection that then announces a
        // 3 GiB frame must be cut off, not trusted with an allocation.
        let mut stream = connect_once(&addrs[0]).unwrap();
        write_frame(&mut stream, &hello_frame(1, 1, 0, 0)).unwrap();
        let ack = read_frame(&mut stream).unwrap();
        check_ack(ack).unwrap();
        stream.write_all(&(3u32 << 30).to_le_bytes()).unwrap();
        stream.flush().unwrap();
        // The worker drops the session; our next read sees EOF/reset.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut scratch = [0u8; 1];
        match stream.read(&mut scratch) {
            Ok(0) => {} // clean EOF
            Ok(_) => panic!("worker kept talking after an oversized header"),
            Err(e) => assert!(is_disconnect(&e) || is_timeout(&e), "{e:?}"),
        }
    }

    #[test]
    fn handshake_garbage_is_rejected_and_worker_survives() {
        let (_servers, addrs) = spawn_local_grid(1, 1, "garbage").unwrap();
        // A client that speaks the wrong magic is dropped...
        let mut stream = connect_once(&addrs[0]).unwrap();
        write_frame(&mut stream, b"HTTP/1.1 GET /").unwrap();
        let mut scratch = [0u8; 16];
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        match stream.read(&mut scratch) {
            Ok(0) => {}
            Ok(_) => panic!("worker acked a garbage handshake"),
            Err(e) => assert!(is_disconnect(&e) || is_timeout(&e), "{e:?}"),
        }
        drop(stream);
        // ...and the worker still serves the next, well-behaved coordinator.
        let transport = SocketTransport::connect(1, 1, addrs, SocketConfig::default()).unwrap();
        assert_eq!(transport.workers(), 1);
    }
}
