//! The simulated worker grid.

use std::fmt;

use crate::comm::CommStats;

/// A worker count that cannot form the square grid the paper's hybrid
/// partitioning scheme (§6) assumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterError {
    workers: usize,
}

impl ClusterError {
    /// The rejected worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let workers = self.workers;
        let side = (workers as f64).sqrt().floor() as usize;
        if workers == 0 {
            write!(f, "a cluster needs at least one worker")
        } else {
            write!(
                f,
                "{workers} workers cannot form a square grid ({workers} is not a \
                 perfect square; nearest are {} and {})",
                side * side,
                (side + 1) * (side + 1)
            )
        }
    }
}

impl std::error::Error for ClusterError {}

/// A simulated cluster: a rectangular grid of workers plus a communication
/// meter. Partitioned matrices ([`crate::DistMatrix`]) use the same grid
/// geometry; the cluster itself holds no matrix data.
#[derive(Debug)]
pub struct Cluster {
    grid_rows: usize,
    grid_cols: usize,
    comm: CommStats,
}

impl Cluster {
    /// A square cluster of `workers` nodes arranged as a `√w × √w` grid.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or not a perfect square — the paper's
    /// hybrid partitioning scheme (§6) assumes a square grid. Use
    /// [`Cluster::with_grid`] for rectangular layouts, or
    /// [`Cluster::try_new`] anywhere the worker count is user input.
    pub fn new(workers: usize) -> Cluster {
        Cluster::try_new(workers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Cluster::new`] for `Result`-returning callers:
    /// errors instead of panicking when `workers` is zero or not a perfect
    /// square. Worker counts arriving from a CLI flag or config file go
    /// through here so a bad count renders as an error chain, not an abort.
    pub fn try_new(workers: usize) -> std::result::Result<Cluster, ClusterError> {
        let side = (workers as f64).sqrt().round() as usize;
        if workers == 0 || side * side != workers {
            return Err(ClusterError { workers });
        }
        Ok(Cluster::with_grid(side, side))
    }

    /// A cluster laid out as an explicit `grid_rows × grid_cols` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_grid(grid_rows: usize, grid_cols: usize) -> Cluster {
        assert!(
            grid_rows > 0 && grid_cols > 0,
            "grid must have at least one row and column"
        );
        Cluster {
            grid_rows,
            grid_cols,
            comm: CommStats::default(),
        }
    }

    /// The side length of the (square) worker grid.
    ///
    /// # Panics
    ///
    /// Panics for rectangular clusters; those must use
    /// [`Cluster::grid_rows`] / [`Cluster::grid_cols`].
    pub fn grid(&self) -> usize {
        assert_eq!(
            self.grid_rows, self.grid_cols,
            "grid() is only defined for square clusters"
        );
        self.grid_rows
    }

    /// Number of grid rows.
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Number of grid columns.
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Total number of workers.
    pub fn workers(&self) -> usize {
        self.grid_rows * self.grid_cols
    }

    /// The cluster's communication meter.
    pub fn comm(&self) -> &CommStats {
        &self.comm
    }
}
