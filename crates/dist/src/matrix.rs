//! Block-partitioned dense matrices.

use crate::Result;
use linview_matrix::{Matrix, MatrixError};

/// A dense matrix split into a `grid_rows × grid_cols` grid of
/// equally-sized blocks, each conceptually owned by one worker.
///
/// Both matrix dimensions must divide evenly by the corresponding grid
/// dimension; [`DistMatrix::from_dense`] rejects anything else, which is
/// how indivisible layouts surface as errors instead of silent padding.
#[derive(Debug, Clone)]
pub struct DistMatrix {
    rows: usize,
    cols: usize,
    grid_rows: usize,
    grid_cols: usize,
    /// Row-major `grid_rows × grid_cols` blocks.
    blocks: Vec<Matrix>,
}

impl DistMatrix {
    /// Partitions `m` over a square `grid × grid` worker grid.
    pub fn from_dense(m: &Matrix, grid: usize) -> Result<DistMatrix> {
        DistMatrix::from_dense_grid(m, grid, grid)
    }

    /// Partitions `m` over an explicit `grid_rows × grid_cols` grid.
    pub fn from_dense_grid(m: &Matrix, grid_rows: usize, grid_cols: usize) -> Result<DistMatrix> {
        if grid_rows == 0
            || grid_cols == 0
            || !m.rows().is_multiple_of(grid_rows)
            || !m.cols().is_multiple_of(grid_cols)
        {
            return Err(MatrixError::DimMismatch {
                op: "dist partition",
                lhs: m.shape(),
                rhs: (grid_rows, grid_cols),
            });
        }
        let bh = m.rows() / grid_rows;
        let bw = m.cols() / grid_cols;
        let mut blocks = Vec::with_capacity(grid_rows * grid_cols);
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                blocks.push(m.submatrix(br * bh, bc * bw, bh, bw)?);
            }
        }
        Ok(DistMatrix {
            rows: m.rows(),
            cols: m.cols(),
            grid_rows,
            grid_cols,
            blocks,
        })
    }

    /// Gathers the partitions back into one dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        let (bh, bw) = self.block_shape();
        for br in 0..self.grid_rows {
            for bc in 0..self.grid_cols {
                out.set_submatrix(br * bh, bc * bw, self.block(br, bc))
                    .expect("block geometry is consistent by construction");
            }
        }
        out
    }

    /// Total rows of the full matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total columns of the full matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape of the full matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of block rows in the grid.
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Number of block columns in the grid.
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Shape of every block: `(rows/grid_rows, cols/grid_cols)`.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.rows / self.grid_rows, self.cols / self.grid_cols)
    }

    /// The block at grid position `(br, bc)`.
    pub fn block(&self, br: usize, bc: usize) -> &Matrix {
        &self.blocks[br * self.grid_cols + bc]
    }

    /// Mutable access to the block at grid position `(br, bc)`.
    pub fn block_mut(&mut self, br: usize, bc: usize) -> &mut Matrix {
        &mut self.blocks[br * self.grid_cols + bc]
    }

    /// Serialized size of one block in bytes (the unit of shuffle traffic).
    pub fn block_bytes(&self) -> u64 {
        let (bh, bw) = self.block_shape();
        (bh * bw * std::mem::size_of::<f64>()) as u64
    }
}
