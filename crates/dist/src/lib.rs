//! # linview-dist
//!
//! A simulated cluster standing in for the paper's Spark backend (§6):
//! grid partitioning of dense matrices, distributed kernels over the
//! partitions, and byte/message-level communication metering.
//!
//! The simulation is *semantically* faithful rather than physically
//! parallel: every "worker" is a block of a [`DistMatrix`], and every block
//! transfer a kernel would require on a real cluster is recorded in the
//! owning [`Cluster`]'s [`CommStats`]. This is what lets the reproduction
//! check the paper's §6 claim — re-evaluation *shuffles* `O(n²)` blocks per
//! refresh, while incremental maintenance only *broadcasts* `O(kn)`
//! factors — as an assertion over metered traffic rather than a prose
//! argument.
//!
//! * [`Cluster`] — a `√w × √w` (or explicitly rectangular) worker grid with
//!   a communication meter.
//! * [`DistMatrix`] — a dense matrix split into equally-sized grid blocks.
//! * [`dist_matmul`] — block-SUMMA product; meters the block shuffles
//!   re-evaluation pays.
//! * [`dist_add_low_rank`] — the `O(kn²)` distributed low-rank view update;
//!   meters only factor broadcasts.
//! * [`WorkerPool`] ([`transport`]) — the *non*-simulated layer: one
//!   long-lived worker thread per grid cell, each owning its view blocks,
//!   with every coordinator interaction serialized into byte frames over
//!   real channels. The `ThreadedBackend` in `linview-runtime` builds on
//!   this, so its metered byte counts are exact frame lengths rather than
//!   analytical estimates.
//!
//! ```
//! use linview_dist::{dist_add_low_rank, dist_matmul, Cluster, DistMatrix};
//! use linview_matrix::{ApproxEq, Matrix};
//!
//! let cluster = Cluster::new(4); // 2×2 grid
//! let a = Matrix::random_spectral(8, 1, 0.9);
//! let da = DistMatrix::from_dense(&a, cluster.grid()).unwrap();
//!
//! // Distributed squaring matches the single-node kernel...
//! let d2 = dist_matmul(&da, &da, &cluster).unwrap();
//! assert!(d2.to_dense().approx_eq(&a.try_matmul(&a).unwrap(), 1e-12));
//! // ...and pays shuffle traffic, which the meter records.
//! assert!(cluster.comm().snapshot().shuffle_bytes > 0);
//!
//! // A low-rank update only broadcasts its skinny factors.
//! cluster.comm().reset();
//! let mut view = d2.clone();
//! let u = Matrix::random_uniform(8, 2, 7);
//! let v = Matrix::random_uniform(8, 2, 8);
//! dist_add_low_rank(&mut view, &u, &v, &cluster).unwrap();
//! let comm = cluster.comm().snapshot();
//! assert_eq!(comm.shuffle_bytes, 0);
//! assert!(comm.broadcast_bytes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod comm;
mod matrix;
mod ops;
pub mod socket;
pub mod transport;

pub use cluster::{Cluster, ClusterError};
pub use comm::{CommSnapshot, CommStats};
pub use matrix::DistMatrix;
pub use ops::{dist_add_low_rank, dist_add_low_rank_sparse, dist_matmul, factor_wire_bytes};
pub use socket::{
    bind, serve_worker, spawn_local_grid, PeerAddr, ServeOptions, SocketConfig, SocketTransport,
    WorkerListener, WorkerServer,
};
pub use transport::{
    decode_delta_frame, delta_frame, factor_prefers_sparse, sparse_delta_frame, ChannelTransport,
    FramePool, Transport, TransportError, TransportResult, WorkerPool,
};

/// Crate-wide result type (all fallible paths surface dense-kernel errors).
pub type Result<T> = std::result::Result<T, linview_matrix::MatrixError>;
