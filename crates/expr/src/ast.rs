//! The matrix expression AST.
//!
//! The language matches §3 of the paper: matrix addition, subtraction,
//! multiplication, scalar multiplication, transpose, and inverse, plus two
//! structural forms the framework itself introduces — `Identity`/`Zero`
//! literals (for the sums-of-powers recurrences of Table 1) and `HStack`
//! (horizontal block stacking, the compact factored-delta representation of
//! §4.2: "stacking the corresponding vectors together").

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// An `f64` wrapper with total equality/hashing (bit-pattern based) so that
/// expressions containing scalars can be used as hash-map keys during common
/// subexpression elimination.
#[derive(Debug, Clone, Copy)]
pub struct Scalar(pub f64);

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for Scalar {}
impl std::hash::Hash for Scalar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar(v)
    }
}

/// A symbolic matrix expression.
///
/// Build with the constructor helpers ([`Expr::var`], [`Expr::inv`], …) or
/// the overloaded `+`, `-`, `*` operators:
///
/// ```
/// use linview_expr::Expr;
/// let e = (Expr::var("A") * Expr::var("B")).t() + Expr::var("C");
/// assert_eq!(e.to_string(), "(A B)' + C");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A named matrix variable.
    Var(String),
    /// Entrywise sum.
    Add(Box<Expr>, Box<Expr>),
    /// Entrywise difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Matrix product.
    Mul(Box<Expr>, Box<Expr>),
    /// Scalar multiple `λ·E`.
    Scale(Scalar, Box<Expr>),
    /// Transpose `Eᵀ`.
    Transpose(Box<Expr>),
    /// Matrix inverse `E⁻¹`.
    Inverse(Box<Expr>),
    /// The `n×n` identity literal.
    Identity(usize),
    /// The `r×c` zero literal.
    Zero(usize, usize),
    /// Horizontal stack of blocks `[E₁ E₂ … E_k]` (all same row count).
    HStack(Vec<Expr>),
}

impl Expr {
    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// The identity literal `I_n`.
    pub fn identity(n: usize) -> Expr {
        Expr::Identity(n)
    }

    /// The zero literal `0_{r×c}`.
    pub fn zero(rows: usize, cols: usize) -> Expr {
        Expr::Zero(rows, cols)
    }

    /// Transpose (postfix-style builder).
    pub fn t(self) -> Expr {
        Expr::Transpose(Box::new(self))
    }

    /// Matrix inverse.
    pub fn inv(self) -> Expr {
        Expr::Inverse(Box::new(self))
    }

    /// Scalar multiple `λ·self`.
    pub fn scale(self, lambda: f64) -> Expr {
        Expr::Scale(Scalar(lambda), Box::new(self))
    }

    /// Horizontal block stack; panics on an empty list (checked at dim
    /// inference otherwise).
    pub fn hstack(blocks: Vec<Expr>) -> Expr {
        assert!(!blocks.is_empty(), "hstack of zero blocks");
        if blocks.len() == 1 {
            blocks.into_iter().next().expect("len checked")
        } else {
            Expr::HStack(blocks)
        }
    }

    /// True when the expression mentions `name`.
    pub fn references(&self, name: &str) -> bool {
        match self {
            Expr::Var(v) => v == name,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.references(name) || b.references(name)
            }
            Expr::Scale(_, e) | Expr::Transpose(e) | Expr::Inverse(e) => e.references(name),
            Expr::Identity(_) | Expr::Zero(_, _) => false,
            Expr::HStack(parts) => parts.iter().any(|p| p.references(name)),
        }
    }

    /// True when the expression mentions any variable in `names`.
    pub fn references_any<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> bool {
        names.into_iter().any(|n| self.references(n))
    }

    /// Collects the set of referenced variable names (sorted, deduplicated).
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Scale(_, e) | Expr::Transpose(e) | Expr::Inverse(e) => e.collect_vars(out),
            Expr::Identity(_) | Expr::Zero(_, _) => {}
            Expr::HStack(parts) => parts.iter().for_each(|p| p.collect_vars(out)),
        }
    }

    /// Replaces every occurrence of variable `name` with `replacement`.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => replacement.clone(),
            Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => self.clone(),
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.substitute(name, replacement)),
                Box::new(b.substitute(name, replacement)),
            ),
            Expr::Scale(s, e) => Expr::Scale(*s, Box::new(e.substitute(name, replacement))),
            Expr::Transpose(e) => Expr::Transpose(Box::new(e.substitute(name, replacement))),
            Expr::Inverse(e) => Expr::Inverse(Box::new(e.substitute(name, replacement))),
            Expr::HStack(parts) => Expr::HStack(
                parts
                    .iter()
                    .map(|p| p.substitute(name, replacement))
                    .collect(),
            ),
        }
    }

    /// Number of AST nodes (used by tests and the optimizer's size budget).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => 0,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => a.node_count() + b.node_count(),
            Expr::Scale(_, e) | Expr::Transpose(e) | Expr::Inverse(e) => e.node_count(),
            Expr::HStack(parts) => parts.iter().map(Expr::node_count).sum(),
        }
    }

    /// Iterates over all subexpressions (pre-order), calling `f` on each.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Scale(_, e) | Expr::Transpose(e) | Expr::Inverse(e) => e.visit(f),
            Expr::HStack(parts) => parts.iter().for_each(|p| p.visit(f)),
        }
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        rhs.scale(self)
    }
}

/// Operator precedence for pretty printing.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Add(..) | Expr::Sub(..) => 1,
        Expr::Mul(..) | Expr::Scale(..) => 2,
        _ => 3,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn child(f: &mut fmt::Formatter<'_>, parent: u8, e: &Expr) -> fmt::Result {
            if prec(e) < parent {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        }
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => {
                child(f, 1, a)?;
                write!(f, " + ")?;
                child(f, 1, b)
            }
            Expr::Sub(a, b) => {
                child(f, 1, a)?;
                write!(f, " - ")?;
                // Right operand of '-' needs parens at equal precedence.
                if prec(b) <= 1 {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Expr::Mul(a, b) => {
                child(f, 2, a)?;
                write!(f, " ")?;
                // Right operand of a product: parenthesize anything that is
                // itself a product/sum so the association (and therefore the
                // intended evaluation order) stays visible, as in the
                // paper's trigger listings.
                if prec(b) <= 2 {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Expr::Scale(s, e) => {
                write!(f, "{} ", s.0)?;
                child(f, 3, e)
            }
            Expr::Transpose(e) => {
                if prec(e) < 3 {
                    write!(f, "({e})'")
                } else {
                    write!(f, "{e}'")
                }
            }
            Expr::Inverse(e) => {
                if prec(e) < 3 {
                    write!(f, "({e})^-1")
                } else {
                    write!(f, "{e}^-1")
                }
            }
            Expr::Identity(n) => write!(f, "I({n})"),
            Expr::Zero(r, c) => write!(f, "0({r}x{c})"),
            Expr::HStack(parts) => {
                write!(f, "[ ")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, " ]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let e = (Expr::var("A") * Expr::var("B")).t() + Expr::var("C");
        assert_eq!(e.to_string(), "(A B)' + C");
        let e2 = Expr::var("A").inv() * Expr::var("Y");
        assert_eq!(e2.to_string(), "A^-1 Y");
        let e3 = 2.5 * Expr::var("A");
        assert_eq!(e3.to_string(), "2.5 A");
    }

    #[test]
    fn display_parenthesizes_sub_rhs() {
        let e = Expr::var("A") - (Expr::var("B") - Expr::var("C"));
        assert_eq!(e.to_string(), "A - (B - C)");
    }

    #[test]
    fn references_and_variables() {
        let e = Expr::var("A") * (Expr::var("B") + Expr::var("A")).t();
        assert!(e.references("A"));
        assert!(e.references("B"));
        assert!(!e.references("C"));
        assert_eq!(e.variables(), vec!["A".to_string(), "B".to_string()]);
        assert!(e.references_any(["C", "B"]));
        assert!(!e.references_any(["C", "D"]));
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        let e = Expr::var("A") * Expr::var("A") + Expr::var("B");
        let s = e.substitute("A", &Expr::var("X"));
        assert_eq!(s.to_string(), "X X + B");
        assert!(!s.references("A"));
    }

    #[test]
    fn scalar_eq_is_bitwise() {
        assert_eq!(Scalar(1.5), Scalar(1.5));
        assert_ne!(Scalar(0.0), Scalar(-0.0));
    }

    #[test]
    fn hstack_of_one_unwraps() {
        let e = Expr::hstack(vec![Expr::var("u")]);
        assert_eq!(e, Expr::var("u"));
        let e2 = Expr::hstack(vec![Expr::var("u"), Expr::var("w")]);
        assert_eq!(e2.to_string(), "[ u | w ]");
    }

    #[test]
    fn node_count_counts_all() {
        let e = Expr::var("A") * Expr::var("B") + Expr::identity(3);
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn visit_preorder() {
        let e = Expr::var("A") + Expr::var("B");
        let mut seen = Vec::new();
        e.visit(&mut |x| seen.push(x.to_string()));
        assert_eq!(seen, vec!["A + B", "A", "B"]);
    }
}
