//! Analytical FLOP cost model (§3 "Computational complexity").
//!
//! The paper parameterizes matrix-multiplication cost as `O(nᵞ)` with
//! `2 ≤ γ ≤ 3`. The model here mirrors that: square `n×n · n×n` products
//! cost `2·nᵞ`, everything else costs the classical `2·m·k·n` multiply-add
//! count (rectangular products in the incremental path are skinny, where γ
//! is irrelevant). Inversion costs `2·nᵞ`; entrywise ops cost one FLOP per
//! entry.
//!
//! Product subtrees are costed at their *optimal chain order* — the same
//! order the runtime evaluator uses — so analytical predictions and measured
//! FLOP counters (from `linview-matrix::flops`) are directly comparable.

use crate::chain;
use crate::{Catalog, Dim, Expr, Result};

/// Cost model with a tunable matrix-multiplication exponent.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Exponent γ for square matrix multiplication and inversion.
    pub gamma: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::cubic()
    }
}

impl CostModel {
    /// The classical `γ = 3` model that matches this crate's kernels.
    pub fn cubic() -> Self {
        CostModel { gamma: 3.0 }
    }

    /// A model with a custom exponent (e.g. 2.807 for Strassen-class
    /// algorithms) for the analytical tables.
    pub fn with_gamma(gamma: f64) -> Self {
        assert!((2.0..=3.0).contains(&gamma), "γ must be in [2, 3]");
        CostModel { gamma }
    }

    /// Cost of a single `(m×k)·(k×n)` product.
    pub fn mul_cost(&self, m: usize, k: usize, n: usize) -> f64 {
        if m == k && k == n {
            2.0 * (m as f64).powf(self.gamma)
        } else {
            2.0 * (m as f64) * (k as f64) * (n as f64)
        }
    }

    /// Cost of inverting an `n×n` matrix.
    pub fn inverse_cost(&self, n: usize) -> f64 {
        2.0 * (n as f64).powf(self.gamma)
    }

    /// Total modeled cost of evaluating `e` (with products at their optimal
    /// chain order).
    pub fn expr_cost(&self, e: &Expr, cat: &Catalog) -> Result<f64> {
        Ok(match e {
            Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => 0.0,
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                let d = e.dim(cat)?;
                self.expr_cost(a, cat)? + self.expr_cost(b, cat)? + d.len() as f64
            }
            Expr::Scale(_, inner) => self.expr_cost(inner, cat)? + inner.dim(cat)?.len() as f64,
            Expr::Transpose(inner) => self.expr_cost(inner, cat)? + inner.dim(cat)?.len() as f64,
            Expr::Inverse(inner) => {
                self.expr_cost(inner, cat)? + self.inverse_cost(inner.dim(cat)?.rows)
            }
            Expr::Mul(_, _) => {
                let (factors, plan) = chain::plan_product(e, cat, self)?;
                let leaves: f64 = factors
                    .iter()
                    .map(|f| self.expr_cost(f, cat))
                    .collect::<Result<Vec<_>>>()?
                    .into_iter()
                    .sum();
                leaves + plan.cost
            }
            Expr::HStack(parts) => {
                let mut total = 0.0;
                for p in parts {
                    // Copying a block into the stacked matrix touches every entry.
                    total += self.expr_cost(p, cat)? + p.dim(cat)?.len() as f64;
                }
                total
            }
        })
    }

    /// Asymptotic label for a square product at dimension `n` (diagnostics).
    pub fn describe_square_mul(&self, n: usize) -> String {
        format!(
            "2·{n}^{} = {:.3e} FLOPs",
            self.gamma,
            self.mul_cost(n, n, n)
        )
    }
}

/// The cost of a rank-`k` factored delta applied to an `n×m` view
/// (`X += U Vᵀ`): `2·k·n·m` multiply-adds.
pub fn low_rank_update_cost(view: Dim, k: usize) -> f64 {
    2.0 * (k as f64) * view.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_mul_uses_gamma() {
        let m = CostModel::with_gamma(2.5);
        assert_eq!(m.mul_cost(16, 16, 16), 2.0 * (16f64).powf(2.5));
        // Rectangular products are counted classically.
        assert_eq!(m.mul_cost(16, 2, 16), 2.0 * 16.0 * 2.0 * 16.0);
    }

    #[test]
    #[should_panic(expected = "γ must be in [2, 3]")]
    fn gamma_out_of_range_rejected() {
        let _ = CostModel::with_gamma(3.5);
    }

    #[test]
    fn expr_cost_accumulates() {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        let model = CostModel::cubic();
        // A·A: one square product.
        let e = Expr::var("A") * Expr::var("A");
        assert_eq!(model.expr_cost(&e, &cat).unwrap(), 2.0 * 512.0);
        // A·A + A: product plus an addition over 64 entries.
        let e2 = Expr::var("A") * Expr::var("A") + Expr::var("A");
        assert_eq!(model.expr_cost(&e2, &cat).unwrap(), 2.0 * 512.0 + 64.0);
    }

    #[test]
    fn chain_cost_uses_optimal_order() {
        let mut cat = Catalog::new();
        cat.declare("U", 100, 2);
        cat.declare("Vt", 2, 100);
        cat.declare("B", 100, 100);
        let model = CostModel::cubic();
        let e = Expr::var("U") * Expr::var("Vt") * Expr::var("B");
        let cost = model.expr_cost(&e, &cat).unwrap();
        // Optimal: U (Vᵀ B) = 2·(2·100·100)·2 = 80000, not 2·100³.
        assert!(cost < 2_000_000.0 / 2.0);
        assert_eq!(cost, 2.0 * 2.0 * 100.0 * 100.0 * 2.0);
    }

    #[test]
    fn inverse_cost_is_gamma() {
        let mut cat = Catalog::new();
        cat.declare("A", 32, 32);
        let model = CostModel::cubic();
        let e = Expr::var("A").inv();
        assert_eq!(model.expr_cost(&e, &cat).unwrap(), 2.0 * 32768.0);
    }

    #[test]
    fn low_rank_update_cost_is_2knm() {
        assert_eq!(low_rank_update_cost(Dim::new(10, 20), 3), 1200.0);
    }
}
