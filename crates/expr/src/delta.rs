//! Delta derivation — the heart of LINVIEW (§4.1–§4.3).
//!
//! Given an expression `E` and a set of updated matrices with *factored*
//! deltas `ΔX = U_X V_Xᵀ`, [`derive()`] produces the factored delta of `E`
//! itself, `Δ(E) = U Vᵀ`, as a pair of symbolic block expressions.
//!
//! The product rule is where the paper's key insight lives. Naïvely
//!
//! ```text
//! Δ(E₁E₂) = (ΔE₁)E₂ + E₁(ΔE₂) + (ΔE₁)(ΔE₂)
//! ```
//!
//! is a sum of three low-rank monomials, so ranks would triple per statement
//! (Example 4.4: ΔD as a product of two `n×27` matrices). Extracting the
//! common factor `U₁` from the first and third monomials (§4.3) yields
//!
//! ```text
//! U = [ U₁ | E₁U₂ + U₁(V₁ᵀU₂) ]      V = [ E₂ᵀV₁ | V₂ ]
//! ```
//!
//! so ranks only *add* (ΔD as two `n×8` matrices). Both forms are
//! implemented; [`DeltaOptions::factor_common`] switches between them for
//! the ablation study.
//!
//! The rule for `E⁻¹` cannot be expressed as a static factored expression —
//! it needs the Sherman–Morrison runtime primitive — so `derive` reports
//! [`ExprError::InverseDeltaNeedsRuntime`] and the compiler hoists the
//! inverse into its own statement handled by a dedicated trigger op.

use crate::{Catalog, Expr, ExprError, Result};
use std::collections::BTreeMap;

/// Options controlling delta derivation.
#[derive(Debug, Clone, Copy)]
pub struct DeltaOptions {
    /// Extract common factors in the product rule (§4.3). Disable only for
    /// the ablation that demonstrates multiplicative rank blow-up.
    pub factor_common: bool,
}

impl Default for DeltaOptions {
    fn default() -> Self {
        DeltaOptions {
            factor_common: true,
        }
    }
}

/// The factored delta of an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// The expression does not depend on any updated matrix.
    Zero,
    /// `Δ = u · vᵀ` where `u : (rows×k)` and `v : (cols×k)` are block
    /// expressions (possibly `HStack`s of several monomial factors).
    Factored {
        /// Left block matrix `U`.
        u: Expr,
        /// Right block matrix `V` (the delta is `U Vᵀ`).
        v: Expr,
    },
}

impl Delta {
    /// Constructs a factored delta.
    pub fn factored(u: Expr, v: Expr) -> Delta {
        Delta::Factored { u, v }
    }

    /// True for the zero delta.
    pub fn is_zero(&self) -> bool {
        matches!(self, Delta::Zero)
    }

    /// The block rank `k` (number of stacked columns), or 0 for zero deltas.
    pub fn rank(&self, cat: &Catalog) -> Result<usize> {
        match self {
            Delta::Zero => Ok(0),
            Delta::Factored { u, .. } => Ok(u.dim(cat)?.cols),
        }
    }

    /// The full delta as a plain (unfactored) expression `U Vᵀ`; used by
    /// tests to validate algebra against brute-force re-evaluation.
    pub fn as_expr(&self, dim_rows: usize, dim_cols: usize) -> Expr {
        match self {
            Delta::Zero => Expr::zero(dim_rows, dim_cols),
            Delta::Factored { u, v } => u.clone() * v.clone().t(),
        }
    }
}

/// Map from updated variable name to its factored delta `(U, V)`.
pub type DeltaMap = BTreeMap<String, (Expr, Expr)>;

/// Conventional names for the factored-update input variables of a dynamic
/// matrix `X`: the trigger for `X` receives `ΔX = dU_X · dV_Xᵀ`.
pub fn input_delta_names(var: &str) -> (String, String) {
    (format!("dU_{var}"), format!("dV_{var}"))
}

/// Derives the factored delta of `expr` for simultaneous updates to every
/// variable in `deltas` (the multi-matrix rule of §4.4 / Example 4.5 falls
/// out of the recursion because the product rule is exact for simultaneous
/// updates).
///
/// All matrix variables inside the produced blocks refer to their **old**
/// values: trigger programs evaluate every block assignment before applying
/// any `+=` update, exactly like Example 4.6.
pub fn derive(expr: &Expr, cat: &Catalog, deltas: &DeltaMap, opts: &DeltaOptions) -> Result<Delta> {
    // Fast path: expressions untouched by any updated matrix have zero delta.
    if !expr.references_any(deltas.keys().map(String::as_str)) {
        return Ok(Delta::Zero);
    }
    match expr {
        Expr::Var(name) => Ok(match deltas.get(name) {
            Some((u, v)) => Delta::factored(u.clone(), v.clone()),
            None => Delta::Zero,
        }),
        Expr::Identity(_) | Expr::Zero(_, _) => Ok(Delta::Zero),
        Expr::Add(a, b) => {
            let da = derive(a, cat, deltas, opts)?;
            let db = derive(b, cat, deltas, opts)?;
            combine_sum(da, db, false)
        }
        Expr::Sub(a, b) => {
            let da = derive(a, cat, deltas, opts)?;
            let db = derive(b, cat, deltas, opts)?;
            combine_sum(da, db, true)
        }
        Expr::Scale(s, e) => Ok(match derive(e, cat, deltas, opts)? {
            Delta::Zero => Delta::Zero,
            Delta::Factored { u, v } => Delta::factored(u.scale(s.0), v),
        }),
        Expr::Transpose(e) => Ok(match derive(e, cat, deltas, opts)? {
            Delta::Zero => Delta::Zero,
            // Δ(Eᵀ) = (U Vᵀ)ᵀ = V Uᵀ — just swap the factors.
            Delta::Factored { u, v } => Delta::factored(v, u),
        }),
        Expr::Mul(a, b) => {
            let da = derive(a, cat, deltas, opts)?;
            let db = derive(b, cat, deltas, opts)?;
            combine_product(a, b, da, db, opts)
        }
        Expr::Inverse(e) => {
            // Reaching here means the inner expression *does* change.
            debug_assert!(!derive(e, cat, deltas, opts)
                .map(|d| d.is_zero())
                .unwrap_or(false));
            Err(ExprError::InverseDeltaNeedsRuntime {
                expr: e.to_string(),
            })
        }
        Expr::HStack(parts) => derive_hstack(parts, cat, deltas, opts),
    }
}

/// Δ(E₁ ± E₂): concatenate the factor blocks (negating `U₂` for `−`).
fn combine_sum(da: Delta, db: Delta, negate_b: bool) -> Result<Delta> {
    Ok(match (da, db) {
        (Delta::Zero, Delta::Zero) => Delta::Zero,
        (d, Delta::Zero) => d,
        (Delta::Zero, Delta::Factored { u, v }) => {
            if negate_b {
                Delta::factored(u.scale(-1.0), v)
            } else {
                Delta::factored(u, v)
            }
        }
        (Delta::Factored { u: ua, v: va }, Delta::Factored { u: ub, v: vb }) => {
            let ub = if negate_b { ub.scale(-1.0) } else { ub };
            Delta::factored(Expr::hstack(vec![ua, ub]), Expr::hstack(vec![va, vb]))
        }
    })
}

/// Δ(E₁E₂) with the three-monomial rule, factored or unfactored.
fn combine_product(
    e1: &Expr,
    e2: &Expr,
    da: Delta,
    db: Delta,
    opts: &DeltaOptions,
) -> Result<Delta> {
    Ok(match (da, db) {
        (Delta::Zero, Delta::Zero) => Delta::Zero,
        // Only E₁ changes: Δ = (U₁V₁ᵀ)E₂ = U₁ (E₂ᵀV₁)ᵀ.
        (Delta::Factored { u, v }, Delta::Zero) => Delta::factored(u, e2.clone().t() * v),
        // Only E₂ changes: Δ = E₁(U₂V₂ᵀ) = (E₁U₂) V₂ᵀ.
        (Delta::Zero, Delta::Factored { u, v }) => Delta::factored(e1.clone() * u, v),
        (Delta::Factored { u: u1, v: v1 }, Delta::Factored { u: u2, v: v2 }) => {
            if opts.factor_common {
                // §4.3: U = [U₁ | E₁U₂ + U₁(V₁ᵀU₂)],  V = [E₂ᵀV₁ | V₂].
                let mid = e1.clone() * u2.clone() + u1.clone() * (v1.clone().t() * u2.clone());
                Delta::factored(
                    Expr::hstack(vec![u1, mid]),
                    Expr::hstack(vec![e2.clone().t() * v1, v2]),
                )
            } else {
                // Unfactored ablation: three independent monomials.
                let m3_u = u1.clone() * (v1.clone().t() * u2.clone());
                Delta::factored(
                    Expr::hstack(vec![u1, e1.clone() * u2, m3_u]),
                    Expr::hstack(vec![e2.clone().t() * v1, v2.clone(), v2]),
                )
            }
        }
    })
}

/// Δ[E₁ | E₂ | …]: pad each block's `V` with zero rows so the stacked delta
/// is again a single factored product. Rarely needed (deltas of delta
/// blocks) but keeps the algebra closed.
fn derive_hstack(
    parts: &[Expr],
    cat: &Catalog,
    deltas: &DeltaMap,
    opts: &DeltaOptions,
) -> Result<Delta> {
    let dims: Vec<_> = parts
        .iter()
        .map(|p| p.dim(cat))
        .collect::<Result<Vec<_>>>()?;
    let total_cols: usize = dims.iter().map(|d| d.cols).sum();
    let mut us = Vec::new();
    let mut vs = Vec::new();
    let mut offset = 0usize;
    for (part, d) in parts.iter().zip(&dims) {
        let dp = derive(part, cat, deltas, opts)?;
        if let Delta::Factored { u, v } = dp {
            let k = u.dim(cat)?.cols;
            // Padded V: (total_cols × k) with v occupying rows [offset, offset+cols).
            let mut stack = Vec::new();
            if offset > 0 {
                stack.push(Expr::zero(k, offset));
            }
            stack.push(v.t());
            if total_cols - offset - d.cols > 0 {
                stack.push(Expr::zero(k, total_cols - offset - d.cols));
            }
            us.push(u);
            vs.push(Expr::hstack(stack).t());
        }
        offset += d.cols;
    }
    if us.is_empty() {
        return Ok(Delta::Zero);
    }
    Ok(Delta::factored(Expr::hstack(us), Expr::hstack(vs)))
}

/// Registers the input-update variables `dU_X`, `dV_X` of a rank-`k` update
/// to `X` in the catalog and returns the corresponding [`DeltaMap`] entry.
pub fn declare_input_delta(cat: &mut Catalog, var: &str, rank: usize) -> Result<(Expr, Expr)> {
    let d = cat.get(var)?;
    let (un, vn) = input_delta_names(var);
    cat.declare(&un, d.rows, rank);
    cat.declare(&vn, d.cols, rank);
    Ok((Expr::var(un), Expr::var(vn)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeltaOptions;

    fn setup() -> (Catalog, DeltaMap) {
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        cat.declare("B", 8, 8);
        let mut deltas = DeltaMap::new();
        let (u, v) = declare_input_delta(&mut cat, "A", 1).unwrap();
        deltas.insert("A".to_string(), (u, v));
        (cat, deltas)
    }

    #[test]
    fn delta_of_unrelated_var_is_zero() {
        let (cat, deltas) = setup();
        let d = derive(&Expr::var("B"), &cat, &deltas, &DeltaOptions::default()).unwrap();
        assert!(d.is_zero());
    }

    #[test]
    fn delta_of_updated_var_is_input_delta() {
        let (cat, deltas) = setup();
        let d = derive(&Expr::var("A"), &cat, &deltas, &DeltaOptions::default()).unwrap();
        assert_eq!(d.rank(&cat).unwrap(), 1);
    }

    #[test]
    fn product_rule_example_4_4() {
        // ΔB for B := A·A with rank-1 ΔA must have rank 2 when factored.
        let (cat, deltas) = setup();
        let b = Expr::var("A") * Expr::var("A");
        let d = derive(&b, &cat, &deltas, &DeltaOptions::default()).unwrap();
        assert_eq!(d.rank(&cat).unwrap(), 2);
        // Unfactored: rank 3 (three monomials).
        let d3 = derive(
            &b,
            &cat,
            &deltas,
            &DeltaOptions {
                factor_common: false,
            },
        )
        .unwrap();
        assert_eq!(d3.rank(&cat).unwrap(), 3);
    }

    #[test]
    fn rank_growth_matches_paper_a8() {
        // A⁴ = (A·A)·(A·A) propagated twice: ΔC rank 4 factored / 9 unfactored
        // (§4.3's "product of two (n×4) matrices" vs "(n×9)").
        let mut cat = Catalog::new();
        cat.declare("A", 8, 8);
        cat.declare("B", 8, 8);
        cat.declare("C", 8, 8);
        let mut deltas = DeltaMap::new();
        let (u, v) = declare_input_delta(&mut cat, "A", 1).unwrap();
        deltas.insert("A".to_string(), (u, v));

        for factor in [true, false] {
            let opts = DeltaOptions {
                factor_common: factor,
            };
            let db = derive(&(Expr::var("A") * Expr::var("A")), &cat, &deltas, &opts).unwrap();
            let mut d2 = deltas.clone();
            let Delta::Factored { u: ub, v: _vb } = db else {
                panic!("expected factored")
            };
            // Register ΔB's blocks as named vars to mimic the compiler.
            let k = ub.dim(&cat).unwrap().cols;
            let mut cat2 = cat.clone();
            cat2.declare("U_B", 8, k);
            cat2.declare("V_B", 8, k);
            d2.insert("B".into(), (Expr::var("U_B"), Expr::var("V_B")));
            let dc = derive(&(Expr::var("B") * Expr::var("B")), &cat2, &d2, &opts).unwrap();
            let rank_c = dc.rank(&cat2).unwrap();
            if factor {
                assert_eq!((k, rank_c), (2, 4));
            } else {
                assert_eq!((k, rank_c), (3, 9));
            }
        }
    }

    #[test]
    fn sum_rule_concatenates_blocks() {
        let (mut cat, mut deltas) = setup();
        let (u, v) = declare_input_delta(&mut cat, "B", 1).unwrap();
        deltas.insert("B".to_string(), (u, v));
        let e = Expr::var("A") + Expr::var("B");
        let d = derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap();
        assert_eq!(d.rank(&cat).unwrap(), 2);
    }

    #[test]
    fn sub_rule_negates_right_block() {
        let (cat, deltas) = setup();
        let e = Expr::var("B") - Expr::var("A");
        let d = derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap();
        let Delta::Factored { u, .. } = d else {
            panic!()
        };
        assert_eq!(u.to_string(), "-1 dU_A");
    }

    #[test]
    fn transpose_swaps_factors() {
        let (cat, deltas) = setup();
        let d = derive(&Expr::var("A").t(), &cat, &deltas, &DeltaOptions::default()).unwrap();
        let Delta::Factored { u, v } = d else {
            panic!()
        };
        assert_eq!(u.to_string(), "dV_A");
        assert_eq!(v.to_string(), "dU_A");
    }

    #[test]
    fn scale_rule_scales_left_factor() {
        let (cat, deltas) = setup();
        let d = derive(
            &Expr::var("A").scale(3.0),
            &cat,
            &deltas,
            &DeltaOptions::default(),
        )
        .unwrap();
        let Delta::Factored { u, .. } = d else {
            panic!()
        };
        assert_eq!(u.to_string(), "3 dU_A");
    }

    #[test]
    fn multi_update_product_rule_example_4_5() {
        // E = A·B with both A and B updated: delta has the three-monomial
        // structure, rank 2 after factoring.
        let (mut cat, mut deltas) = setup();
        let (u, v) = declare_input_delta(&mut cat, "B", 1).unwrap();
        deltas.insert("B".to_string(), (u, v));
        let e = Expr::var("A") * Expr::var("B");
        let d = derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap();
        assert_eq!(d.rank(&cat).unwrap(), 2);
    }

    #[test]
    fn inverse_delta_is_reported_for_runtime_handling() {
        let (cat, deltas) = setup();
        let e = Expr::var("A").inv();
        let err = derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap_err();
        assert!(matches!(err, ExprError::InverseDeltaNeedsRuntime { .. }));
    }

    #[test]
    fn inverse_of_static_expression_has_zero_delta() {
        let (cat, deltas) = setup();
        let e = Expr::var("B").inv() * Expr::var("A");
        // B doesn't change, so only the A-side contributes.
        let d = derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap();
        assert_eq!(d.rank(&cat).unwrap(), 1);
    }

    #[test]
    fn hstack_delta_pads_blocks() {
        let (cat, deltas) = setup();
        let e = Expr::HStack(vec![Expr::var("A"), Expr::var("B")]);
        let d = derive(&e, &cat, &deltas, &DeltaOptions::default()).unwrap();
        let Delta::Factored { u, v } = d else {
            panic!()
        };
        assert_eq!(u.dim(&cat).unwrap().cols, 1);
        // V covers all 16 stacked columns.
        assert_eq!(v.dim(&cat).unwrap().rows, 16);
    }

    #[test]
    fn input_delta_names_are_stable() {
        assert_eq!(
            input_delta_names("A"),
            ("dU_A".to_string(), "dV_A".to_string())
        );
    }
}
