//! Dimension inference against a variable catalog.

use crate::{Expr, ExprError, Result};
use std::collections::BTreeMap;

/// A `(rows, cols)` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
}

impl Dim {
    /// Creates a shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Dim { rows, cols }
    }

    /// True for square shapes.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Shape of the transpose.
    pub fn transposed(&self) -> Dim {
        Dim::new(self.cols, self.rows)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when either dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pair form.
    pub fn as_pair(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

impl From<(usize, usize)> for Dim {
    fn from((rows, cols): (usize, usize)) -> Self {
        Dim::new(rows, cols)
    }
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}x{})", self.rows, self.cols)
    }
}

/// Declares the shape of every matrix variable a program may reference.
///
/// The compiler extends the catalog as it introduces auxiliary views and
/// delta-block variables, so shapes stay checkable end to end.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    vars: BTreeMap<String, Dim>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or redeclares) a variable's shape.
    pub fn declare(&mut self, name: impl Into<String>, rows: usize, cols: usize) {
        self.vars.insert(name.into(), Dim::new(rows, cols));
    }

    /// Looks up a variable's shape.
    pub fn get(&self, name: &str) -> Result<Dim> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| ExprError::UnknownVar(name.to_string()))
    }

    /// True when `name` is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Iterates over `(name, dim)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Dim)> {
        self.vars.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variables are declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

impl Expr {
    /// Infers the shape of this expression, checking conformability of every
    /// operation along the way.
    pub fn dim(&self, cat: &Catalog) -> Result<Dim> {
        match self {
            Expr::Var(v) => cat.get(v),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                let da = a.dim(cat)?;
                let db = b.dim(cat)?;
                if da != db {
                    return Err(ExprError::DimMismatch {
                        op: "add/sub",
                        lhs: da.as_pair(),
                        rhs: db.as_pair(),
                    });
                }
                Ok(da)
            }
            Expr::Mul(a, b) => {
                let da = a.dim(cat)?;
                let db = b.dim(cat)?;
                if da.cols != db.rows {
                    return Err(ExprError::DimMismatch {
                        op: "mul",
                        lhs: da.as_pair(),
                        rhs: db.as_pair(),
                    });
                }
                Ok(Dim::new(da.rows, db.cols))
            }
            Expr::Scale(_, e) => e.dim(cat),
            Expr::Transpose(e) => Ok(e.dim(cat)?.transposed()),
            Expr::Inverse(e) => {
                let d = e.dim(cat)?;
                if !d.is_square() {
                    return Err(ExprError::NotSquare { shape: d.as_pair() });
                }
                Ok(d)
            }
            Expr::Identity(n) => Ok(Dim::new(*n, *n)),
            Expr::Zero(r, c) => Ok(Dim::new(*r, *c)),
            Expr::HStack(parts) => {
                if parts.is_empty() {
                    return Err(ExprError::EmptyStack);
                }
                let first = parts[0].dim(cat)?;
                let mut cols = first.cols;
                for p in &parts[1..] {
                    let d = p.dim(cat)?;
                    if d.rows != first.rows {
                        return Err(ExprError::DimMismatch {
                            op: "hstack",
                            lhs: first.as_pair(),
                            rhs: d.as_pair(),
                        });
                    }
                    cols += d.cols;
                }
                Ok(Dim::new(first.rows, cols))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("A", 4, 4);
        c.declare("X", 6, 4);
        c.declare("Y", 6, 2);
        c.declare("u", 4, 1);
        c
    }

    #[test]
    fn var_lookup() {
        assert_eq!(cat().get("A").unwrap(), Dim::new(4, 4));
        assert!(matches!(
            cat().get("missing"),
            Err(ExprError::UnknownVar(_))
        ));
    }

    #[test]
    fn mul_chains_shapes() {
        let c = cat();
        // X' X : (4x6)(6x4) = 4x4
        let e = Expr::var("X").t() * Expr::var("X");
        assert_eq!(e.dim(&c).unwrap(), Dim::new(4, 4));
        // (X'X)^-1 X' Y : 4x2
        let ols =
            (Expr::var("X").t() * Expr::var("X")).inv() * (Expr::var("X").t() * Expr::var("Y"));
        assert_eq!(ols.dim(&c).unwrap(), Dim::new(4, 2));
    }

    #[test]
    fn mul_rejects_nonconforming() {
        let c = cat();
        let e = Expr::var("X") * Expr::var("Y");
        assert!(matches!(
            e.dim(&c),
            Err(ExprError::DimMismatch { op: "mul", .. })
        ));
    }

    #[test]
    fn add_requires_equal_shapes() {
        let c = cat();
        assert!((Expr::var("A") + Expr::var("A")).dim(&c).is_ok());
        assert!((Expr::var("A") + Expr::var("X")).dim(&c).is_err());
    }

    #[test]
    fn inverse_requires_square() {
        let c = cat();
        assert!(Expr::var("X").inv().dim(&c).is_err());
        assert!(Expr::var("A").inv().dim(&c).is_ok());
    }

    #[test]
    fn hstack_sums_columns() {
        let c = cat();
        let e = Expr::HStack(vec![Expr::var("u"), Expr::var("A")]);
        assert_eq!(e.dim(&c).unwrap(), Dim::new(4, 5));
        let bad = Expr::HStack(vec![Expr::var("u"), Expr::var("X")]);
        assert!(bad.dim(&c).is_err());
    }

    #[test]
    fn literals_have_fixed_dims() {
        let c = cat();
        assert_eq!(Expr::identity(7).dim(&c).unwrap(), Dim::new(7, 7));
        assert_eq!(Expr::zero(2, 3).dim(&c).unwrap(), Dim::new(2, 3));
    }

    #[test]
    fn transpose_swaps() {
        let c = cat();
        assert_eq!(Expr::var("X").t().dim(&c).unwrap(), Dim::new(4, 6));
    }
}
