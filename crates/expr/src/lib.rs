//! # linview-expr
//!
//! The symbolic layer of the LINVIEW reproduction (Nikolic, ElSeidy, Koch —
//! SIGMOD 2014): matrix expressions, dimension inference, the delta rules of
//! §4.1, the factored delta representation of §4.2–4.3, an algebraic
//! simplifier, a FLOP cost model with tunable multiplication exponent γ, and
//! the matrix-chain ordering DP that makes factored deltas cheap to evaluate.
//!
//! The central type is [`Expr`], an immutable AST over named matrix
//! variables. Deltas are derived by [`delta::derive`]: given an expression
//! and a map from updated variables to their factored deltas `ΔX = U Vᵀ`,
//! it produces the factored delta of the whole expression, extracting common
//! factors so block ranks grow additively instead of multiplicatively
//! (Example 4.4 → §4.3).
//!
//! ```
//! use linview_expr::{Catalog, Expr};
//! let mut cat = Catalog::new();
//! cat.declare("A", 4, 4);
//! let b = Expr::var("A") * Expr::var("A");
//! assert_eq!(b.dim(&cat).unwrap(), (4, 4).into());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
pub mod chain;
pub mod cost;
pub mod delta;
mod dims;
mod error;
pub mod simplify;

pub use ast::{Expr, Scalar};
pub use delta::{Delta, DeltaOptions};
pub use dims::{Catalog, Dim};
pub use error::ExprError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExprError>;
