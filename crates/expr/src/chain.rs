//! Matrix-chain ordering.
//!
//! The factored delta representation only pays off under the right
//! association: `U (Vᵀ B)` costs `O(kn²)` while `(U Vᵀ) B` costs `O(nᵞ)` —
//! the avalanche the paper's §4.2 warns about. The runtime therefore never
//! evaluates a product tree as written; it flattens multiplicative chains
//! and picks the association with the classic `O(L³)` dynamic program,
//! using the same cost model as the analytical tables.

use crate::cost::CostModel;
use crate::{Catalog, Dim, Expr, Result};

/// A parenthesization of a product chain over leaf indices `0..L`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainTree {
    /// A single chain element.
    Leaf(usize),
    /// A product of two sub-chains.
    Node(Box<ChainTree>, Box<ChainTree>),
}

impl ChainTree {
    /// Renders with explicit parentheses, e.g. `((0 1) 2)`.
    pub fn render(&self) -> String {
        match self {
            ChainTree::Leaf(i) => i.to_string(),
            ChainTree::Node(l, r) => format!("({} {})", l.render(), r.render()),
        }
    }
}

/// The result of chain optimization: the tree and its modeled FLOP cost
/// (product steps only; leaf evaluation costs are not included).
#[derive(Debug, Clone)]
pub struct ChainPlan {
    /// Optimal association.
    pub tree: ChainTree,
    /// Modeled cost of executing the products in that order.
    pub cost: f64,
}

/// Flattens nested `Mul` nodes into the ordered list of chain factors.
///
/// Only bare products are flattened; any other node (including `Scale`,
/// which the simplifier hoists out of products) terminates a leaf.
pub fn flatten_product(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Mul(a, b) = e {
            go(a, out);
            go(b, out);
        } else {
            out.push(e);
        }
    }
    go(e, &mut out);
    out
}

/// Finds the optimal parenthesization for a chain of factor shapes.
///
/// `dims[i]` is the shape of the i-th factor; consecutive shapes must
/// conform (checked by the caller's dimension inference).
pub fn optimal_order(dims: &[Dim], model: &CostModel) -> ChainPlan {
    let l = dims.len();
    assert!(l >= 1, "empty chain");
    if l == 1 {
        return ChainPlan {
            tree: ChainTree::Leaf(0),
            cost: 0.0,
        };
    }
    // p[i] = rows of factor i; p[l] = cols of the last factor.
    let mut p = Vec::with_capacity(l + 1);
    p.push(dims[0].rows);
    for d in dims {
        p.push(d.cols);
    }
    // DP over chain segments.
    let mut cost = vec![vec![0.0f64; l]; l];
    let mut split = vec![vec![0usize; l]; l];
    for span in 2..=l {
        for i in 0..=(l - span) {
            let j = i + span - 1;
            let mut best = f64::INFINITY;
            let mut best_k = i;
            for k in i..j {
                let c = cost[i][k] + cost[k + 1][j] + model.mul_cost(p[i], p[k + 1], p[j + 1]);
                if c < best {
                    best = c;
                    best_k = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_k;
        }
    }
    fn build(split: &[Vec<usize>], i: usize, j: usize) -> ChainTree {
        if i == j {
            ChainTree::Leaf(i)
        } else {
            let k = split[i][j];
            ChainTree::Node(
                Box::new(build(split, i, k)),
                Box::new(build(split, k + 1, j)),
            )
        }
    }
    ChainPlan {
        tree: build(&split, 0, l - 1),
        cost: cost[0][l - 1],
    }
}

/// Convenience: plans the optimal evaluation order for a product expression
/// against a catalog. Returns the chain factors together with the plan.
pub fn plan_product<'a>(
    e: &'a Expr,
    cat: &Catalog,
    model: &CostModel,
) -> Result<(Vec<&'a Expr>, ChainPlan)> {
    let factors = flatten_product(e);
    let dims = factors
        .iter()
        .map(|f| f.dim(cat))
        .collect::<Result<Vec<_>>>()?;
    Ok((factors, optimal_order(&dims, model)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_respects_structure() {
        let e = (Expr::var("A") * Expr::var("B")) * (Expr::var("C") * Expr::var("D"));
        let f = flatten_product(&e);
        assert_eq!(f.len(), 4);
        assert_eq!(f[2], &Expr::var("C"));
        // Transpose terminates a leaf.
        let e2 = Expr::var("A") * (Expr::var("B") * Expr::var("C")).t();
        assert_eq!(flatten_product(&e2).len(), 2);
    }

    #[test]
    fn textbook_chain_example() {
        // Classic CLRS instance: dims 10x100, 100x5, 5x50 -> ((0 1) 2),
        // 7500 scalar multiplications = 15000 FLOPs at 2 per mul-add.
        let model = CostModel::cubic();
        let dims = [Dim::new(10, 100), Dim::new(100, 5), Dim::new(5, 50)];
        let plan = optimal_order(&dims, &model);
        assert_eq!(plan.tree.render(), "((0 1) 2)");
        assert_eq!(plan.cost, 15000.0);
    }

    #[test]
    fn skinny_first_ordering_beats_avalanche() {
        // U (n×k), Vᵀ (k×n), B (n×n): must evaluate (Vᵀ B) first.
        let model = CostModel::cubic();
        let n = 1000;
        let k = 2;
        let dims = [Dim::new(n, k), Dim::new(k, n), Dim::new(n, n)];
        let plan = optimal_order(&dims, &model);
        assert_eq!(plan.tree.render(), "(0 (1 2))");
        // O(kn²), far below the O(n³) of the naive left-to-right order.
        assert!(plan.cost <= 2.0 * 2.0 * (k * n * n) as f64);
    }

    #[test]
    fn single_factor_chain_is_free() {
        let plan = optimal_order(&[Dim::new(3, 3)], &CostModel::cubic());
        assert_eq!(plan.tree, ChainTree::Leaf(0));
        assert_eq!(plan.cost, 0.0);
    }

    #[test]
    fn plan_product_checks_dims() {
        let mut cat = Catalog::new();
        cat.declare("A", 4, 4);
        cat.declare("u", 4, 1);
        let e = Expr::var("A") * Expr::var("u");
        let (factors, plan) = plan_product(&e, &cat, &CostModel::cubic()).unwrap();
        assert_eq!(factors.len(), 2);
        assert_eq!(plan.cost, 2.0 * 4.0 * 4.0 * 1.0);
    }
}
