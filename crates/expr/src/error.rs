use std::fmt;

/// Errors produced by symbolic analysis (dimension inference, delta
/// derivation, cost estimation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A variable was referenced that is not declared in the catalog.
    UnknownVar(String),
    /// Two subexpressions had incompatible shapes.
    DimMismatch {
        /// Operation being checked.
        op: &'static str,
        /// Left operand shape.
        lhs: (usize, usize),
        /// Right operand shape.
        rhs: (usize, usize),
    },
    /// `Inverse` applied to a non-square expression.
    NotSquare {
        /// The offending shape.
        shape: (usize, usize),
    },
    /// Delta of a matrix inverse cannot be expressed as a static factored
    /// expression; the compiler must emit a Sherman–Morrison runtime
    /// statement instead (§4.1, §5.1).
    InverseDeltaNeedsRuntime {
        /// Rendering of the inverse subexpression.
        expr: String,
    },
    /// An empty horizontal stack.
    EmptyStack,
    /// The statement dependency graph of a trigger body is cyclic, so no
    /// staged execution order exists. Algorithm 1 only emits forward
    /// def-use chains, so this can surface only for hand-built or
    /// corrupted trigger bodies — it is a compile-time validation error,
    /// never a runtime condition.
    ScheduleCycle {
        /// 0-based indices of the statements left unschedulable.
        stmts: Vec<usize>,
    },
    /// The static trigger-program analyzer denied the program: one of its
    /// passes (shape inference, stage-disjointness proof, scheduler
    /// cross-check) produced an error-severity diagnostic.
    Analysis {
        /// Name of the analyzer pass that produced the diagnostic.
        pass: &'static str,
        /// Input name of the trigger the diagnostic is about.
        trigger: String,
        /// 0-based statement index inside the trigger body, if any.
        stmt: Option<usize>,
        /// What is wrong.
        message: String,
        /// How to fix it, when the analyzer has a concrete idea.
        suggestion: Option<String>,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownVar(v) => write!(f, "unknown matrix variable '{v}'"),
            ExprError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: ({}x{}) vs ({}x{})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            ExprError::NotSquare { shape } => {
                write!(
                    f,
                    "inverse of non-square ({}x{}) expression",
                    shape.0, shape.1
                )
            }
            ExprError::InverseDeltaNeedsRuntime { expr } => write!(
                f,
                "delta of inverse '{expr}' requires a Sherman-Morrison runtime statement"
            ),
            ExprError::EmptyStack => write!(f, "empty block stack"),
            ExprError::ScheduleCycle { stmts } => write!(
                f,
                "cyclic statement dependencies: no stage order for statements {stmts:?}"
            ),
            ExprError::Analysis {
                pass,
                trigger,
                stmt,
                message,
                suggestion,
            } => {
                write!(f, "static analysis [{pass}] trigger '{trigger}'")?;
                if let Some(i) = stmt {
                    write!(f, " stmt {i}")?;
                }
                write!(f, ": {message}")?;
                if let Some(s) = suggestion {
                    write!(f, " (hint: {s})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ExprError {}
