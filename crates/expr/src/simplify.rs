//! Algebraic simplification of matrix expressions.
//!
//! Delta derivation generates expressions littered with structural noise —
//! products with identity literals (from the sums-of-powers recurrences),
//! zero blocks (from vanished deltas), nested scalar factors, and double
//! transposes. The simplifier normalizes these away bottom-up so that the
//! trigger programs the compiler emits match the clean forms in the paper
//! (e.g. Example 4.6) and so that common subexpression elimination can match
//! syntactically equal subtrees.

use crate::{Catalog, Expr, Result, Scalar};

/// Maximum fixpoint iterations (defensive bound; 2–3 suffice in practice).
const MAX_PASSES: usize = 8;

/// Simplifies `e` to a fixpoint under the rewrite rules described in the
/// module docs. Dimension information is needed to materialize `Zero`
/// literals of the right shape.
pub fn simplify(e: &Expr, cat: &Catalog) -> Result<Expr> {
    let mut cur = e.clone();
    for _ in 0..MAX_PASSES {
        let next = simplify_once(&cur, cat)?;
        if next == cur {
            return Ok(next);
        }
        cur = next;
    }
    Ok(cur)
}

/// True when the expression is a zero literal.
pub fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::Zero(_, _))
}

/// Pushes transposes down to the leaves: `(A·B)ᵀ → Bᵀ·Aᵀ`,
/// `(A±B)ᵀ → Aᵀ±Bᵀ`, `(E⁻¹)ᵀ → (Eᵀ)⁻¹`.
///
/// This canonicalization makes syntactically different spellings of the
/// same product comparable, which lets the optimizer's common-subexpression
/// elimination match e.g. `(Xᵀ·u)` hiding inside `(uᵀ·X)ᵀ`. It is opt-in
/// (not part of [`simplify`]) because it changes the printed trigger text.
pub fn push_transposes(e: &Expr, cat: &Catalog) -> Result<Expr> {
    let pushed = push_t(e);
    simplify(&pushed, cat)
}

fn push_t(e: &Expr) -> Expr {
    match e {
        Expr::Transpose(inner) => match &**inner {
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(push_t(&Expr::Transpose(b.clone()))),
                Box::new(push_t(&Expr::Transpose(a.clone()))),
            ),
            Expr::Add(a, b) => Expr::Add(
                Box::new(push_t(&Expr::Transpose(a.clone()))),
                Box::new(push_t(&Expr::Transpose(b.clone()))),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(push_t(&Expr::Transpose(a.clone()))),
                Box::new(push_t(&Expr::Transpose(b.clone()))),
            ),
            Expr::Scale(s, x) => Expr::Scale(*s, Box::new(push_t(&Expr::Transpose(x.clone())))),
            Expr::Transpose(x) => push_t(x),
            Expr::Inverse(x) => Expr::Inverse(Box::new(push_t(&Expr::Transpose(x.clone())))),
            Expr::Identity(n) => Expr::Identity(*n),
            Expr::Zero(r, c) => Expr::Zero(*c, *r),
            Expr::Var(_) | Expr::HStack(_) => Expr::Transpose(Box::new(push_t(inner))),
        },
        Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => e.clone(),
        Expr::Add(a, b) => Expr::Add(Box::new(push_t(a)), Box::new(push_t(b))),
        Expr::Sub(a, b) => Expr::Sub(Box::new(push_t(a)), Box::new(push_t(b))),
        Expr::Mul(a, b) => Expr::Mul(Box::new(push_t(a)), Box::new(push_t(b))),
        Expr::Scale(s, x) => Expr::Scale(*s, Box::new(push_t(x))),
        Expr::Inverse(x) => Expr::Inverse(Box::new(push_t(x))),
        Expr::HStack(parts) => Expr::HStack(parts.iter().map(push_t).collect()),
    }
}

/// True when the expression is an identity literal.
pub fn is_identity(e: &Expr) -> bool {
    matches!(e, Expr::Identity(_))
}

fn simplify_once(e: &Expr, cat: &Catalog) -> Result<Expr> {
    Ok(match e {
        Expr::Var(_) | Expr::Identity(_) | Expr::Zero(_, _) => e.clone(),
        Expr::Add(a, b) => {
            let a = simplify_once(a, cat)?;
            let b = simplify_once(b, cat)?;
            if is_zero(&a) {
                b
            } else if is_zero(&b) {
                a
            } else {
                Expr::Add(Box::new(a), Box::new(b))
            }
        }
        Expr::Sub(a, b) => {
            let a = simplify_once(a, cat)?;
            let b = simplify_once(b, cat)?;
            if is_zero(&b) {
                a
            } else if is_zero(&a) {
                Expr::Scale(Scalar(-1.0), Box::new(b))
            } else if a == b {
                let d = a.dim(cat)?;
                Expr::Zero(d.rows, d.cols)
            } else {
                Expr::Sub(Box::new(a), Box::new(b))
            }
        }
        Expr::Mul(a, b) => {
            let a = simplify_once(a, cat)?;
            let b = simplify_once(b, cat)?;
            if is_zero(&a) || is_zero(&b) {
                let da = a.dim(cat)?;
                let db = b.dim(cat)?;
                Expr::Zero(da.rows, db.cols)
            } else if is_identity(&a) {
                b
            } else if is_identity(&b) {
                a
            } else if let Expr::Scale(s, inner) = a {
                // Pull scalars to the outside so chains stay pure products.
                Expr::Scale(s, Box::new(Expr::Mul(inner, Box::new(b))))
            } else if let Expr::Scale(s, inner) = b {
                Expr::Scale(s, Box::new(Expr::Mul(Box::new(a), inner)))
            } else {
                Expr::Mul(Box::new(a), Box::new(b))
            }
        }
        Expr::Scale(s, inner) => {
            let inner = simplify_once(inner, cat)?;
            if s.0 == 1.0 {
                inner
            } else if s.0 == 0.0 || is_zero(&inner) {
                let d = inner.dim(cat)?;
                Expr::Zero(d.rows, d.cols)
            } else if let Expr::Scale(s2, inner2) = inner {
                Expr::Scale(Scalar(s.0 * s2.0), inner2)
            } else {
                Expr::Scale(*s, Box::new(inner))
            }
        }
        Expr::Transpose(inner) => {
            let inner = simplify_once(inner, cat)?;
            match inner {
                Expr::Transpose(x) => *x,
                Expr::Identity(n) => Expr::Identity(n),
                Expr::Zero(r, c) => Expr::Zero(c, r),
                Expr::Scale(s, x) => Expr::Scale(s, Box::new(Expr::Transpose(x))),
                other => Expr::Transpose(Box::new(other)),
            }
        }
        Expr::Inverse(inner) => {
            let inner = simplify_once(inner, cat)?;
            match inner {
                Expr::Identity(n) => Expr::Identity(n),
                Expr::Inverse(x) => *x,
                other => Expr::Inverse(Box::new(other)),
            }
        }
        Expr::HStack(parts) => {
            let mut flat = Vec::with_capacity(parts.len());
            for p in parts {
                let p = simplify_once(p, cat)?;
                // Flatten nested stacks so block widths stay visible.
                if let Expr::HStack(inner) = p {
                    flat.extend(inner);
                } else {
                    flat.push(p);
                }
            }
            if flat.len() == 1 {
                flat.into_iter().next().expect("len checked")
            } else {
                Expr::HStack(flat)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.declare("A", 4, 4);
        c.declare("B", 4, 4);
        c.declare("u", 4, 1);
        c
    }

    #[test]
    fn identity_is_absorbed() {
        let c = cat();
        let e = Expr::identity(4) * Expr::var("A") * Expr::identity(4);
        assert_eq!(simplify(&e, &c).unwrap(), Expr::var("A"));
    }

    #[test]
    fn zero_annihilates_products() {
        let c = cat();
        let e = Expr::var("A") * Expr::zero(4, 4) + Expr::var("B");
        assert_eq!(simplify(&e, &c).unwrap(), Expr::var("B"));
    }

    #[test]
    fn zero_product_gets_result_shape() {
        let c = cat();
        let e = Expr::zero(4, 4) * Expr::var("u");
        assert_eq!(simplify(&e, &c).unwrap(), Expr::zero(4, 1));
    }

    #[test]
    fn sub_self_is_zero() {
        let c = cat();
        let e = Expr::var("A") - Expr::var("A");
        assert_eq!(simplify(&e, &c).unwrap(), Expr::zero(4, 4));
    }

    #[test]
    fn sub_from_zero_negates() {
        let c = cat();
        let e = Expr::zero(4, 4) - Expr::var("A");
        assert_eq!(simplify(&e, &c).unwrap(), Expr::var("A").scale(-1.0));
    }

    #[test]
    fn scalar_folding() {
        let c = cat();
        let e = Expr::var("A").scale(2.0).scale(3.0);
        assert_eq!(simplify(&e, &c).unwrap(), Expr::var("A").scale(6.0));
        let one = Expr::var("A").scale(1.0);
        assert_eq!(simplify(&one, &c).unwrap(), Expr::var("A"));
        let zero = Expr::var("A").scale(0.0);
        assert_eq!(simplify(&zero, &c).unwrap(), Expr::zero(4, 4));
    }

    #[test]
    fn scalars_pulled_out_of_products() {
        let c = cat();
        let e = Expr::var("A").scale(2.0) * Expr::var("B");
        assert_eq!(
            simplify(&e, &c).unwrap(),
            (Expr::var("A") * Expr::var("B")).scale(2.0)
        );
    }

    #[test]
    fn double_transpose_cancels() {
        let c = cat();
        let e = Expr::var("A").t().t();
        assert_eq!(simplify(&e, &c).unwrap(), Expr::var("A"));
        let z = Expr::zero(2, 3).t();
        assert_eq!(simplify(&z, &c).unwrap(), Expr::zero(3, 2));
    }

    #[test]
    fn inverse_of_identity_and_double_inverse() {
        let c = cat();
        assert_eq!(
            simplify(&Expr::identity(4).inv(), &c).unwrap(),
            Expr::identity(4)
        );
        assert_eq!(
            simplify(&Expr::var("A").inv().inv(), &c).unwrap(),
            Expr::var("A")
        );
    }

    #[test]
    fn nested_hstacks_flatten() {
        let c = cat();
        let e = Expr::HStack(vec![
            Expr::HStack(vec![Expr::var("u"), Expr::var("u")]),
            Expr::var("u"),
        ]);
        let s = simplify(&e, &c).unwrap();
        match s {
            Expr::HStack(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat stack, got {other}"),
        }
    }

    #[test]
    fn push_transposes_reverses_products() {
        let c = cat();
        let e = (Expr::var("A") * Expr::var("B")).t();
        assert_eq!(
            push_transposes(&e, &c).unwrap(),
            Expr::var("B").t() * Expr::var("A").t()
        );
        // Distributes over sums and cancels double transposes.
        let e2 = (Expr::var("A") + Expr::var("B").t()).t();
        assert_eq!(
            push_transposes(&e2, &c).unwrap(),
            Expr::var("A").t() + Expr::var("B")
        );
        // (E⁻¹)ᵀ = (Eᵀ)⁻¹.
        let e3 = Expr::var("A").inv().t();
        assert_eq!(push_transposes(&e3, &c).unwrap(), Expr::var("A").t().inv());
    }

    #[test]
    fn push_transposes_exposes_shared_subexpressions() {
        let c = cat();
        // (uᵀ A)ᵀ and Aᵀ u must canonicalize identically.
        let lhs = (Expr::var("u").t() * Expr::var("A")).t();
        let rhs = Expr::var("A").t() * Expr::var("u");
        assert_eq!(
            push_transposes(&lhs, &c).unwrap(),
            push_transposes(&rhs, &c).unwrap()
        );
    }

    #[test]
    fn fixpoint_handles_cascading_rules() {
        let c = cat();
        // ((A')')·I + 0 -> A
        let e = Expr::var("A").t().t() * Expr::identity(4) + Expr::zero(4, 4);
        assert_eq!(simplify(&e, &c).unwrap(), Expr::var("A"));
    }
}
