//! Bounded-hop graph reachability via maintained matrix powers.
//!
//! §5.2 motivates matrix powers with "answering graph reachability queries
//! where k represents the maximum path length". This app makes that
//! concrete: for a directed graph with (scaled) adjacency matrix `A`, the
//! view
//!
//! ```text
//! R = A + A² + … + Aᵏ  =  A · (I + A + … + Aᵏ⁻¹)  =  A · S_k
//! ```
//!
//! has `R[i][j] > 0` iff `j` is reachable from `i` in at most `k` hops.
//! The program is the sums-of-powers program of Table 1 extended with one
//! statement, compiled by Algorithm 1, so every edge insertion/removal is
//! a rank-1 trigger firing instead of a fresh `O(k·nᵞ)` recomputation.
//!
//! Adjacency entries are scaled by a damping constant `< 1` so path-count
//! magnitudes stay bounded at large `k` (the positivity of `R` entries is
//! unaffected).

use linview_compiler::Program;
use linview_expr::{Catalog, Expr};
use linview_matrix::Matrix;
use linview_runtime::{
    ExecBackend, FlushPolicy, IncrementalView, LocalBackend, MaintenanceEngine, RankOneUpdate,
};
use std::collections::BTreeSet;

use crate::sums::sums_program;
use crate::{IterModel, Result};

/// Entries of `R` above this count as reachable (guards fp noise; genuine
/// path weights are ≥ dampingᵏ, far larger for the sizes used here).
const REACH_TOL: f64 = 1e-12;

/// An incrementally maintained ≤ k-hop reachability index, generic over
/// *where* the triggers execute.
///
/// Edge mutations stream through a [`MaintenanceEngine`]: with the default
/// immediate policy every insert/remove is one rank-1 trigger firing (the
/// original behavior); [`Reachability::new_batched`] instead buffers
/// mutations and fires one coalesced rank-`k` trigger per batch — bulk
/// graph loads pay one firing per `batch` edges rather than one per edge.
/// [`Reachability::new_on_with_policy`] runs the same index on any
/// [`ExecBackend`] (e.g. the threaded message-passing backend).
#[derive(Debug, Clone)]
pub struct Reachability<B: ExecBackend = LocalBackend> {
    n: usize,
    k: usize,
    damping: f64,
    adj: Vec<BTreeSet<usize>>,
    engine: MaintenanceEngine<B>,
}

impl Reachability {
    /// Builds the index for `n` nodes, an initial edge list, and hop bound
    /// `k` (maintained with the exponential model when `k` is a power of
    /// two, linear otherwise). Mutations fire immediately.
    pub fn new(n: usize, edges: &[(usize, usize)], k: usize) -> Result<Self> {
        Self::new_with_policy(n, edges, k, FlushPolicy::Immediate)
    }

    /// As [`Reachability::new`], buffering up to `batch` edge mutations per
    /// trigger firing. Queries observe only flushed mutations — call
    /// [`Reachability::flush`] before reading after a partial batch.
    pub fn new_batched(n: usize, edges: &[(usize, usize)], k: usize, batch: usize) -> Result<Self> {
        Self::new_with_policy(n, edges, k, FlushPolicy::Count(batch))
    }

    /// As [`Reachability::new`] with an explicit engine flush policy.
    pub fn new_with_policy(
        n: usize,
        edges: &[(usize, usize)],
        k: usize,
        policy: FlushPolicy,
    ) -> Result<Self> {
        Self::new_on_with_policy(LocalBackend, n, edges, k, policy)
    }
}

impl<B: ExecBackend> Reachability<B> {
    /// As [`Reachability::new_with_policy`] on an explicit execution
    /// backend: the same compiled triggers maintain the index wherever the
    /// backend puts the views.
    pub fn new_on_with_policy(
        backend: B,
        n: usize,
        edges: &[(usize, usize)],
        k: usize,
        policy: FlushPolicy,
    ) -> Result<Self> {
        assert!(n > 0 && k > 0, "empty graph or zero hop bound");
        let model = if k.is_power_of_two() {
            IterModel::Exponential
        } else {
            IterModel::Linear
        };
        let damping = 0.5;
        let mut adj = vec![BTreeSet::new(); n];
        for &(src, dst) in edges {
            assert!(src < n && dst < n, "edge ({src},{dst}) out of range");
            adj[src].insert(dst);
        }
        let mut a = Matrix::zeros(n, n);
        for (src, outs) in adj.iter().enumerate() {
            for &dst in outs {
                a.set(src, dst, damping);
            }
        }
        // Sums program + the closing statement R := A · S_k.
        let (mut program, final_sum) = sums_program(model, k, n);
        let mut extended = Program::new();
        for stmt in program.statements() {
            extended.assign(stmt.target.clone(), stmt.expr.clone());
        }
        extended.assign("R", Expr::var("A") * Expr::var(final_sum));
        program = extended;
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let view = IncrementalView::build_on(backend, &program, &[("A", a)], &cat)?;
        Ok(Reachability {
            n,
            k,
            damping,
            adj,
            engine: MaintenanceEngine::new(view, policy),
        })
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Hop bound.
    pub fn hop_bound(&self) -> usize {
        self.k
    }

    /// True when an edge `src → dst` exists.
    pub fn has_edge(&self, src: usize, dst: usize) -> bool {
        self.adj[src].contains(&dst)
    }

    /// Inserts an edge (no-op if present): one rank-1 trigger firing.
    pub fn add_edge(&mut self, src: usize, dst: usize) -> Result<()> {
        assert!(src < self.n && dst < self.n, "edge out of range");
        if !self.adj[src].insert(dst) {
            return Ok(());
        }
        self.fire(src, dst, self.damping)
    }

    /// Removes an edge (no-op if absent): one rank-1 trigger firing.
    pub fn remove_edge(&mut self, src: usize, dst: usize) -> Result<()> {
        assert!(src < self.n && dst < self.n, "edge out of range");
        if !self.adj[src].remove(&dst) {
            return Ok(());
        }
        self.fire(src, dst, -self.damping)
    }

    fn fire(&mut self, src: usize, dst: usize, weight: f64) -> Result<()> {
        let mut u = Matrix::zeros(self.n, 1);
        u.set(src, 0, 1.0);
        let mut v = Matrix::zeros(self.n, 1);
        v.set(dst, 0, weight);
        self.engine.ingest("A", RankOneUpdate { u, v })
    }

    /// Fires any buffered edge mutations (a no-op under the immediate
    /// policy, where nothing ever buffers).
    pub fn flush(&mut self) -> Result<()> {
        self.engine.flush_all()
    }

    /// Buffered edge mutations not yet reflected in query results.
    pub fn pending_mutations(&self) -> usize {
        self.engine.pending_total()
    }

    /// Trigger firings performed so far (batching makes this less than the
    /// number of mutations).
    pub fn firings(&self) -> u64 {
        self.engine.stats().firings
    }

    /// Turns on the wait-free snapshot read path: concurrent readers get
    /// epoch-stamped, round-consistent copies of the reachability index
    /// (`R` and every partial sum) without blocking edge mutations. See
    /// [`linview_runtime::snapshot`]. Returns a cloneable reader handle.
    pub fn enable_serving(&mut self, publish_every: u64) -> linview_runtime::ViewHandle {
        self.engine.enable_serving(publish_every)
    }

    /// A reader handle onto the published snapshots, when serving is on.
    pub fn serving_handle(&self) -> Option<linview_runtime::ViewHandle> {
        self.engine.serving_handle()
    }

    /// True when `dst` is reachable from `src` in at most `k` hops.
    pub fn reachable(&self, src: usize, dst: usize) -> Result<bool> {
        let r = self.engine.get("R")?;
        Ok(r.get(src, dst) > REACH_TOL)
    }

    /// The damped path weight `Σ_{l=1..k} damping^l · #paths(src→dst, l)`.
    pub fn path_weight(&self, src: usize, dst: usize) -> Result<f64> {
        Ok(self.engine.get("R")?.get(src, dst))
    }

    /// All nodes reachable from `src` within `k` hops (excluding trivial
    /// self-reachability unless a cycle exists).
    pub fn reachable_set(&self, src: usize) -> Result<Vec<usize>> {
        let r = self.engine.get("R")?;
        Ok((0..self.n).filter(|&j| r.get(src, j) > REACH_TOL).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BFS reference: nodes reachable from `src` within `k` hops.
    fn bfs(adj: &[BTreeSet<usize>], src: usize, k: usize) -> BTreeSet<usize> {
        let mut frontier = BTreeSet::from([src]);
        let mut seen = BTreeSet::new();
        for _ in 0..k {
            let mut next = BTreeSet::new();
            for &u in &frontier {
                for &v in &adj[u] {
                    if seen.insert(v) {
                        next.insert(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        seen
    }

    fn chain(n: usize) -> Vec<(usize, usize)> {
        (0..n - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn chain_respects_hop_bound() {
        let n = 10;
        let r = Reachability::new(n, &chain(n), 4).unwrap();
        assert!(r.reachable(0, 4).unwrap());
        assert!(!r.reachable(0, 5).unwrap()); // 5 hops away
        assert!(!r.reachable(4, 0).unwrap()); // directed
    }

    #[test]
    fn edge_insertion_opens_paths() {
        let n = 10;
        let mut r = Reachability::new(n, &chain(n), 4).unwrap();
        assert!(!r.reachable(0, 8).unwrap());
        r.add_edge(1, 7).unwrap(); // 0→1→7→8 = 3 hops
        assert!(r.reachable(0, 8).unwrap());
        assert!(r.has_edge(1, 7));
    }

    #[test]
    fn edge_removal_closes_paths() {
        let n = 8;
        let mut r = Reachability::new(n, &chain(n), 8).unwrap();
        assert!(r.reachable(0, 7).unwrap());
        r.remove_edge(3, 4).unwrap();
        assert!(!r.reachable(0, 7).unwrap());
        assert!(r.reachable(0, 3).unwrap());
        assert!(r.reachable(4, 7).unwrap());
    }

    #[test]
    fn matches_bfs_after_random_churn() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let n = 14;
        let k = 4;
        let mut rng = StdRng::seed_from_u64(77);
        let edges: Vec<(usize, usize)> = (0..25)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let mut r = Reachability::new(n, &edges, k).unwrap();
        // Churn: 20 random insert/remove events.
        for _ in 0..20 {
            let (s, d) = (rng.random_range(0..n), rng.random_range(0..n));
            if rng.random::<f64>() < 0.5 {
                r.add_edge(s, d).unwrap();
            } else {
                r.remove_edge(s, d).unwrap();
            }
        }
        for src in 0..n {
            let expected = bfs(&r.adj, src, k);
            let got: BTreeSet<usize> = r.reachable_set(src).unwrap().into_iter().collect();
            assert_eq!(got, expected, "reachable set from {src} diverges from BFS");
        }
    }

    #[test]
    fn duplicate_operations_are_noops() {
        let n = 6;
        let mut r = Reachability::new(n, &chain(n), 2).unwrap();
        let w = r.path_weight(0, 2).unwrap();
        r.add_edge(0, 1).unwrap(); // already present
        r.remove_edge(5, 0).unwrap(); // absent
        assert_eq!(r.path_weight(0, 2).unwrap(), w);
    }

    #[test]
    fn path_weight_counts_damped_paths() {
        // Two 2-hop paths 0→{1,2}→3: weight = 2·0.5² = 0.5.
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
        let r = Reachability::new(4, &edges, 2).unwrap();
        assert!((r.path_weight(0, 3).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn batched_edge_churn_matches_immediate_with_fewer_firings() {
        let n = 10;
        let seed_edges = chain(n);
        let churn: Vec<(usize, usize)> = vec![(1, 7), (0, 5), (2, 9), (4, 1), (7, 3), (5, 2)];
        let mut immediate = Reachability::new(n, &seed_edges, 4).unwrap();
        let mut batched = Reachability::new_batched(n, &seed_edges, 4, 3).unwrap();
        for &(s, d) in &churn {
            immediate.add_edge(s, d).unwrap();
            batched.add_edge(s, d).unwrap();
        }
        batched.flush().unwrap();
        assert_eq!(batched.pending_mutations(), 0);
        for src in 0..n {
            assert_eq!(
                batched.reachable_set(src).unwrap(),
                immediate.reachable_set(src).unwrap(),
                "reachable set from {src} diverged under batching"
            );
        }
        assert!(
            batched.firings() < immediate.firings(),
            "batch 3 must fire fewer triggers ({} !< {})",
            batched.firings(),
            immediate.firings()
        );
    }

    #[test]
    fn non_power_of_two_k_uses_linear_model() {
        let n = 7;
        let r = Reachability::new(n, &chain(n), 3).unwrap();
        assert_eq!(r.hop_bound(), 3);
        assert!(r.reachable(0, 3).unwrap());
        assert!(!r.reachable(0, 4).unwrap());
    }
}
