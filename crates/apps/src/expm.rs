//! Matrix exponential by truncated Taylor series, incrementally maintained —
//! the "solving systems of linear differential equations using matrix
//! exponentials" motivation §5.2 gives for the matrix-powers workload.
//!
//! The maintained view is the degree-`k` truncation
//!
//! ```text
//! E = Σ_{i=0}^{k} Aⁱ / i!        (so  x(t=1) = E·x₀  solves  ẋ = A·x)
//! ```
//!
//! Under a rank-1 update `ΔA = u·vᵀ`, every power picks up the factored
//! delta of the linear model (Appendix A):
//!
//! ```text
//! ΔM₁ = u·vᵀ
//! ΔMᵢ = [u | A·Uᵢ₋₁ + u·(vᵀUᵢ₋₁)] · [Mᵢ₋₁ᵀ·v | Vᵢ₋₁]ᵀ
//! ΔE  = Σ ΔMᵢ / i!
//! ```
//!
//! so one refresh costs `O(n²k²)` versus the `O(nᵞk)` re-evaluation — the
//! same trade Table 2 records for matrix powers.

use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

use crate::Result;

/// Re-evaluation baseline: recomputes the truncated series per update.
#[derive(Debug, Clone)]
pub struct ReevalExpm {
    a: Matrix,
    k: usize,
    e: Matrix,
}

impl ReevalExpm {
    /// Evaluates `Σ_{i≤k} Aⁱ/i!` for a square `a`.
    pub fn new(a: Matrix, k: usize) -> Result<Self> {
        assert!(k >= 1, "need at least the linear term");
        let e = Self::evaluate(&a, k)?;
        Ok(ReevalExpm { a, k, e })
    }

    fn evaluate(a: &Matrix, k: usize) -> Result<Matrix> {
        let n = a.rows();
        let mut e = Matrix::identity(n);
        let mut term = Matrix::identity(n);
        let mut fact = 1.0;
        for i in 1..=k {
            term = term.try_matmul(a)?;
            fact *= i as f64;
            e.add_assign_from(&term.scale(1.0 / fact))?;
        }
        Ok(e)
    }

    /// Applies an update to `A` and recomputes the series.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        upd.apply_to(&mut self.a)?;
        self.e = Self::evaluate(&self.a, self.k)?;
        Ok(())
    }

    /// The maintained truncation of `exp(A)`.
    pub fn value(&self) -> &Matrix {
        &self.e
    }
}

/// Incremental maintainer: materializes every power `Mᵢ = Aⁱ` and folds
/// factored deltas into the series view.
#[derive(Debug, Clone)]
pub struct IncrExpm {
    a: Matrix,
    k: usize,
    /// Materialized powers `M₁ … M_k` (`m[i-1]` holds `Aⁱ`).
    m: Vec<Matrix>,
    e: Matrix,
}

impl IncrExpm {
    /// Builds the view, materializing all `k` powers.
    pub fn new(a: Matrix, k: usize) -> Result<Self> {
        assert!(k >= 1, "need at least the linear term");
        let n = a.rows();
        let mut m: Vec<Matrix> = Vec::with_capacity(k);
        let mut e = Matrix::identity(n);
        let mut fact = 1.0;
        for i in 1..=k {
            let next = if i == 1 {
                a.clone()
            } else {
                m[i - 2].try_matmul(&a)?
            };
            fact *= i as f64;
            e.add_assign_from(&next.scale(1.0 / fact))?;
            m.push(next);
        }
        Ok(IncrExpm { a, k, m, e })
    }

    /// The maintained truncation of `exp(A)`.
    pub fn value(&self) -> &Matrix {
        &self.e
    }

    /// The maintained power `Aⁱ` (`1 ≤ i ≤ k`).
    pub fn power(&self, i: usize) -> Option<&Matrix> {
        (i >= 1).then(|| self.m.get(i - 1)).flatten()
    }

    /// Solution operator applied to a state: `x(1) = E·x₀`.
    pub fn evolve(&self, x0: &Matrix) -> Result<Matrix> {
        Ok(self.e.try_matmul(x0)?)
    }

    /// Current system matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Applies `ΔA = u·vᵀ`, propagating factored deltas through all powers
    /// and the series view.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        // Factored deltas of M₁ … M_k against the *old* state. The linear
        // recurrence here multiplies A on the LEFT of the delta chain
        // (Mᵢ = Mᵢ₋₁·A maintained as ΔMᵢ = ΔMᵢ₋₁·A + Mᵢ₋₁·ΔA + ΔMᵢ₋₁·ΔA;
        // we use the transposed-dual form with Mᵢ = A·Mᵢ₋₁, identical by
        // symmetry of the power computation).
        let mut deltas: Vec<(Matrix, Matrix)> = Vec::with_capacity(self.k);
        deltas.push((upd.u.clone(), upd.v.clone()));
        for i in 1..self.k {
            let (prev_u, prev_v) = &deltas[i - 1];
            let mid = self
                .a
                .try_matmul(prev_u)?
                .try_add(&upd.u.try_matmul(&upd.v.transpose().try_matmul(prev_u)?)?)?;
            let new_u = Matrix::hstack(&[&upd.u, &mid])?;
            // deltas[i] is ΔM_{i+1}; the recurrence references M_i.
            let left = self.m[i - 1].transpose().try_matmul(&upd.v)?;
            let new_v = Matrix::hstack(&[&left, prev_v])?;
            deltas.push((new_u, new_v));
        }

        // Fold the deltas: powers first, then the series.
        let mut fact = 1.0;
        for (i, (du, dv)) in deltas.iter().enumerate() {
            let dense = du.try_matmul(&dv.transpose())?;
            self.m[i].add_assign_from(&dense)?;
            fact *= (i + 1) as f64;
            self.e.add_assign_from(&dense.scale(1.0 / fact))?;
        }
        upd.apply_to(&mut self.a)?;
        Ok(())
    }

    /// Bytes held by all persistent state (the Table 3-style overhead of
    /// materializing every power).
    pub fn memory_bytes(&self) -> usize {
        self.a.memory_bytes()
            + self.e.memory_bytes()
            + self.m.iter().map(Matrix::memory_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    #[test]
    fn diagonal_matrix_exponentiates_entrywise() {
        // exp(diag(d)) = diag(exp(d)); k = 20 terms is plenty for |d| <= 1.
        let d = [0.5, -0.3, 1.0];
        let a = Matrix::diagonal(&d);
        let e = IncrExpm::new(a, 20).unwrap();
        for (i, &di) in d.iter().enumerate() {
            assert!((e.value().get(i, i) - di.exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_matrix_gives_identity() {
        let e = IncrExpm::new(Matrix::zeros(4, 4), 8).unwrap();
        assert!(e.value().approx_eq(&Matrix::identity(4), 1e-15));
    }

    #[test]
    fn initial_value_matches_reevaluation() {
        let a = Matrix::random_spectral(10, 3, 0.7);
        let incr = IncrExpm::new(a.clone(), 12).unwrap();
        let reeval = ReevalExpm::new(a, 12).unwrap();
        assert!(incr.value().approx_eq(reeval.value(), 1e-12));
    }

    #[test]
    fn updates_track_reevaluation() {
        let n = 12;
        let a = Matrix::random_spectral(n, 5, 0.6);
        let mut incr = IncrExpm::new(a.clone(), 10).unwrap();
        let mut reeval = ReevalExpm::new(a, 10).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 7);
        for _ in 0..10 {
            let upd = stream.next_rank_one();
            incr.apply(&upd).unwrap();
            reeval.apply(&upd).unwrap();
        }
        assert!(incr.value().approx_eq(reeval.value(), 1e-8));
    }

    #[test]
    fn maintained_powers_stay_exact() {
        let n = 8;
        let a = Matrix::random_spectral(n, 9, 0.7);
        let mut incr = IncrExpm::new(a.clone(), 6).unwrap();
        let mut a_ref = a;
        let mut stream = UpdateStream::new(n, n, 0.01, 11);
        for _ in 0..6 {
            let upd = stream.next_rank_one();
            incr.apply(&upd).unwrap();
            upd.apply_to(&mut a_ref).unwrap();
        }
        let mut expected = a_ref.clone();
        for i in 1..=6 {
            assert!(
                incr.power(i).unwrap().approx_eq(&expected, 1e-8),
                "power {i} drifted"
            );
            if i < 6 {
                expected = expected.try_matmul(&a_ref).unwrap();
            }
        }
        assert!(incr.power(0).is_none());
        assert!(incr.power(7).is_none());
    }

    #[test]
    fn evolve_solves_a_known_ode() {
        // ẋ = -x  =>  x(1) = e⁻¹·x₀, per coordinate.
        let n = 3;
        let a = Matrix::identity(n).scale(-1.0);
        let e = IncrExpm::new(a, 25).unwrap();
        let x0 = Matrix::col_vector(&[2.0, -1.0, 0.5]);
        let x1 = e.evolve(&x0).unwrap();
        for i in 0..n {
            assert!((x1.get(i, 0) - x0.get(i, 0) * (-1.0f64).exp()).abs() < 1e-10);
        }
    }

    #[test]
    fn series_identity_exp_a_times_exp_minus_a() {
        // exp(A)·exp(−A) = I up to truncation error.
        let a = Matrix::random_spectral(6, 13, 0.4);
        let pos = IncrExpm::new(a.clone(), 18).unwrap();
        let neg = IncrExpm::new(a.scale(-1.0), 18).unwrap();
        let prod = pos.value().try_matmul(neg.value()).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(6), 1e-9));
    }

    #[test]
    fn memory_grows_with_truncation_order() {
        let a = Matrix::random_spectral(8, 15, 0.5);
        let small = IncrExpm::new(a.clone(), 4).unwrap();
        let large = IncrExpm::new(a, 12).unwrap();
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
