//! The three iterative models of §3.2.

/// How an iterative computation schedules its materialized iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterModel {
    /// Every iteration: `T₁, T₂, …, T_k` (k steps).
    Linear,
    /// Exponentiation by squaring: `T₁, T₂, T₄, …, T_k` (log₂ k steps).
    Exponential,
    /// Exponential up to `s`, then strides of `s`: `T₁, …, T_s, T₂ₛ, …, T_k`
    /// (log₂ s + k/s steps).
    Skip(usize),
}

impl IterModel {
    /// The iteration indices this model materializes to reach `k`,
    /// in evaluation order (Table 1's row structure).
    ///
    /// Panics if `k` (and `s` for Skip) violate the model's divisibility
    /// requirements — use [`IterModel::validate`] for a fallible check.
    pub fn iterations(&self, k: usize) -> Vec<usize> {
        self.validate(k).expect("invalid model parameters");
        match *self {
            IterModel::Linear => (1..=k).collect(),
            IterModel::Exponential => {
                let mut v = vec![1];
                let mut i = 2;
                while i <= k {
                    v.push(i);
                    i *= 2;
                }
                v
            }
            IterModel::Skip(s) => {
                let mut v = IterModel::Exponential.iterations(s);
                let mut i = 2 * s;
                while i <= k {
                    v.push(i);
                    i += s;
                }
                v
            }
        }
    }

    /// Checks divisibility constraints: Exponential needs `k` a power of
    /// two; Skip-s needs `s` a power of two dividing `k`.
    pub fn validate(&self, k: usize) -> Result<(), String> {
        if k == 0 {
            return Err("k must be positive".into());
        }
        match *self {
            IterModel::Linear => Ok(()),
            IterModel::Exponential => {
                if k.is_power_of_two() {
                    Ok(())
                } else {
                    Err(format!(
                        "exponential model requires k a power of two, got {k}"
                    ))
                }
            }
            IterModel::Skip(s) => {
                if s == 0 || !s.is_power_of_two() {
                    Err(format!("skip size must be a power of two, got {s}"))
                } else if !k.is_multiple_of(s) || k < s {
                    Err(format!("skip-{s} requires s | k, got k = {k}"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Number of iteration steps to reach `k` (the step counts §5.2.2
    /// compares: `k`, `log₂ k`, `log₂ s + k/s`).
    pub fn step_count(&self, k: usize) -> usize {
        self.iterations(k).len()
    }

    /// Display label matching the paper's plots ("LIN", "EXP", "SKIP-4").
    pub fn label(&self) -> String {
        match *self {
            IterModel::Linear => "LIN".into(),
            IterModel::Exponential => "EXP".into(),
            IterModel::Skip(s) => format!("SKIP-{s}"),
        }
    }

    /// The models benchmarked in Fig. 3a/3h: LIN, SKIP-2, SKIP-4, SKIP-8, EXP.
    pub fn paper_lineup() -> Vec<IterModel> {
        vec![
            IterModel::Linear,
            IterModel::Skip(2),
            IterModel::Skip(4),
            IterModel::Skip(8),
            IterModel::Exponential,
        ]
    }
}

impl std::fmt::Display for IterModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_iterations() {
        assert_eq!(IterModel::Linear.iterations(4), vec![1, 2, 3, 4]);
        assert_eq!(IterModel::Linear.step_count(16), 16);
    }

    #[test]
    fn exponential_iterations() {
        assert_eq!(IterModel::Exponential.iterations(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(IterModel::Exponential.step_count(16), 5);
        assert!(IterModel::Exponential.validate(12).is_err());
    }

    #[test]
    fn skip_iterations_match_table_1() {
        // s = 8, k = 32: exponential to 8, then strides of 8.
        assert_eq!(
            IterModel::Skip(8).iterations(32),
            vec![1, 2, 4, 8, 16, 24, 32]
        );
        // Skip-s degenerates: s = 1 ~ linear-ish after T1; s = k ~ exponential.
        assert_eq!(IterModel::Skip(2).iterations(8), vec![1, 2, 4, 6, 8]);
    }

    #[test]
    fn skip_validation() {
        assert!(IterModel::Skip(3).validate(9).is_err()); // not a power of 2
        assert!(IterModel::Skip(4).validate(10).is_err()); // s does not divide k
        assert!(IterModel::Skip(4).validate(16).is_ok());
        assert!(IterModel::Skip(0).validate(8).is_err());
        assert!(IterModel::Linear.validate(0).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(IterModel::Skip(4).label(), "SKIP-4");
        assert_eq!(IterModel::paper_lineup().len(), 5);
    }
}
