//! Matrix powers `Aᵏ` (§5.2): program generation for the three iterative
//! models, plus the REEVAL and INCR maintainers that Fig. 3a–3c compare.

use linview_compiler::Program;
use linview_expr::{Catalog, Expr};
use linview_matrix::Matrix;
use linview_runtime::{BatchUpdate, ExecBackend, IncrementalView, LocalBackend, RankOneUpdate};

use crate::{IterModel, Result};

/// Name of the view holding `Aⁱ`.
pub fn power_view(i: usize) -> String {
    format!("P{i}")
}

/// Builds the straight-line program computing `Aᵏ` under `model`
/// (the "Matrix Powers" column of Table 1). Returns the program and the
/// name of the final view.
pub fn powers_program(model: IterModel, k: usize) -> (Program, String) {
    let mut prog = Program::new();
    let iters = model.iterations(k);
    for &i in &iters {
        let stmt = power_statement(model, i);
        prog.assign(power_view(i), stmt);
    }
    (prog, power_view(k))
}

/// The defining expression of `Pᵢ` under `model` (Table 1).
fn power_statement(model: IterModel, i: usize) -> Expr {
    if i == 1 {
        return Expr::var("A");
    }
    match model {
        IterModel::Linear => Expr::var("A") * Expr::var(power_view(i - 1)),
        IterModel::Exponential => Expr::var(power_view(i / 2)) * Expr::var(power_view(i / 2)),
        IterModel::Skip(s) => {
            if i <= s {
                Expr::var(power_view(i / 2)) * Expr::var(power_view(i / 2))
            } else {
                Expr::var(power_view(s)) * Expr::var(power_view(i - s))
            }
        }
    }
}

/// Directly computes `Aᵏ` with the working set the given model needs —
/// the re-evaluation strategy's memory profile (Table 2: space `n²`,
/// independent of `k`).
pub fn compute_power(a: &Matrix, model: IterModel, k: usize) -> Result<Matrix> {
    model.validate(k).expect("invalid model parameters");
    Ok(match model {
        IterModel::Linear => {
            let mut p = a.clone();
            for _ in 2..=k {
                p = a.try_matmul(&p)?;
            }
            p
        }
        IterModel::Exponential => {
            let mut p = a.clone();
            let mut i = 1;
            while i < k {
                p = p.try_matmul(&p)?;
                i *= 2;
            }
            p
        }
        IterModel::Skip(s) => {
            let ps = compute_power(a, IterModel::Exponential, s)?;
            let mut p = ps.clone();
            let mut i = s;
            while i < k {
                p = ps.try_matmul(&p)?;
                i += s;
            }
            p
        }
    })
}

/// Re-evaluation maintainer for `Aᵏ`: applies the update to `A`, then
/// recomputes from scratch under the chosen model.
#[derive(Debug, Clone)]
pub struct ReevalPowers {
    model: IterModel,
    k: usize,
    a: Matrix,
    result: Matrix,
}

impl ReevalPowers {
    /// Builds the view (one full evaluation).
    pub fn new(a: Matrix, model: IterModel, k: usize) -> Result<Self> {
        let result = compute_power(&a, model, k)?;
        Ok(ReevalPowers {
            model,
            k,
            a,
            result,
        })
    }

    /// Applies a rank-1 update and re-evaluates.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        upd.apply_to(&mut self.a)?;
        self.result = compute_power(&self.a, self.model, self.k)?;
        Ok(())
    }

    /// Applies a batched update and re-evaluates.
    pub fn apply_batch(&mut self, upd: &BatchUpdate) -> Result<()> {
        let delta = upd.to_dense()?;
        self.a.add_assign_from(&delta)?;
        self.result = compute_power(&self.a, self.model, self.k)?;
        Ok(())
    }

    /// The maintained `Aᵏ`.
    pub fn result(&self) -> &Matrix {
        &self.result
    }

    /// Persistent state: `A` and the result only (Table 2's `n²` space).
    pub fn memory_bytes(&self) -> usize {
        self.a.memory_bytes() + self.result.memory_bytes()
    }
}

/// Incremental maintainer for `Aᵏ`: Algorithm 1 applied to the generated
/// program, executed by the runtime on any [`ExecBackend`] (defaulting to
/// in-process dense views).
#[derive(Debug, Clone)]
pub struct IncrPowers<B: ExecBackend = LocalBackend> {
    view: IncrementalView<B>,
    final_view: String,
}

impl IncrPowers {
    /// Compiles the model's program and materializes every iteration's view.
    pub fn new(a: Matrix, model: IterModel, k: usize) -> Result<Self> {
        Self::new_with_options(a, model, k, &linview_compiler::CompileOptions::default())
    }

    /// As [`IncrPowers::new`] with explicit compiler options (used by the
    /// common-factor-extraction ablation of Table 2).
    pub fn new_with_options(
        a: Matrix,
        model: IterModel,
        k: usize,
        opts: &linview_compiler::CompileOptions,
    ) -> Result<Self> {
        Self::new_on_with_options(LocalBackend, a, model, k, opts)
    }
}

impl<B: ExecBackend> IncrPowers<B> {
    /// As [`IncrPowers::new`] on an explicit execution backend (e.g. a
    /// [`DistBackend`](linview_runtime::DistBackend) cluster).
    pub fn new_on(backend: B, a: Matrix, model: IterModel, k: usize) -> Result<Self> {
        Self::new_on_with_options(
            backend,
            a,
            model,
            k,
            &linview_compiler::CompileOptions::default(),
        )
    }

    /// As [`IncrPowers::new_on`] with explicit compiler options.
    pub fn new_on_with_options(
        backend: B,
        a: Matrix,
        model: IterModel,
        k: usize,
        opts: &linview_compiler::CompileOptions,
    ) -> Result<Self> {
        let n = a.rows();
        let (program, final_view) = powers_program(model, k);
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let view =
            IncrementalView::build_on_with_options(backend, &program, &[("A", a)], &cat, opts)?;
        Ok(IncrPowers { view, final_view })
    }

    /// Fires the compiled trigger for a rank-1 update.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        self.view.apply("A", upd)
    }

    /// Fires the compiled trigger for a batched rank-k update.
    pub fn apply_batch(&mut self, upd: &BatchUpdate) -> Result<()> {
        self.view.apply_batch("A", upd)
    }

    /// The maintained `Aᵏ`.
    pub fn result(&self) -> &Matrix {
        self.view.get(&self.final_view).expect("final view exists")
    }

    /// Reads any intermediate power view `Aⁱ`.
    pub fn power(&self, i: usize) -> Result<&Matrix> {
        self.view.get(&power_view(i))
    }

    /// Persistent state: `A` plus *every* materialized iteration — the
    /// memory overhead Table 3 quantifies.
    pub fn memory_bytes(&self) -> usize {
        self.view.memory_bytes()
    }

    /// Access to the compiled trigger program (codegen, plan inspection).
    pub fn trigger_program(&self) -> &linview_compiler::TriggerProgram {
        self.view.trigger_program()
    }

    /// Turns on the wait-free snapshot read path over every maintained
    /// power view (see [`linview_runtime::snapshot`]): readers get
    /// epoch-stamped, round-consistent copies without ever blocking
    /// trigger firings. Returns a cloneable reader handle.
    pub fn enable_serving(&mut self, publish_every: u64) -> linview_runtime::ViewHandle {
        self.view.enable_serving(publish_every)
    }

    /// A reader handle onto the published snapshots, when serving is on.
    pub fn serving_handle(&self) -> Option<linview_runtime::ViewHandle> {
        self.view.serving_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    fn brute_power(a: &Matrix, k: usize) -> Matrix {
        let mut p = a.clone();
        for _ in 1..k {
            p = p.try_matmul(a).unwrap();
        }
        p
    }

    #[test]
    fn programs_match_table_1_structure() {
        let (lin, fin) = powers_program(IterModel::Linear, 4);
        assert_eq!(fin, "P4");
        assert_eq!(lin.statements()[3].to_string(), "P4 := A P3;");
        let (exp, _) = powers_program(IterModel::Exponential, 8);
        assert_eq!(exp.statements()[2].to_string(), "P4 := P2 P2;");
        let (skip, _) = powers_program(IterModel::Skip(4), 16);
        // 1, 2, 4 exponential, then 8, 12, 16 strided.
        assert_eq!(skip.statements()[3].to_string(), "P8 := P4 P4;");
        assert_eq!(skip.statements()[4].to_string(), "P12 := P4 P8;");
    }

    #[test]
    fn compute_power_agrees_across_models() {
        let a = Matrix::random_spectral(10, 3, 0.9);
        let expected = brute_power(&a, 16);
        for model in IterModel::paper_lineup() {
            let p = compute_power(&a, model, 16).unwrap();
            assert!(
                p.approx_eq(&expected, 1e-9),
                "model {model} disagrees with brute force"
            );
        }
    }

    #[test]
    fn incremental_matches_reeval_for_every_model() {
        let n = 12;
        let k = 8;
        let a = Matrix::random_spectral(n, 5, 0.8);
        for model in [
            IterModel::Linear,
            IterModel::Exponential,
            IterModel::Skip(2),
            IterModel::Skip(4),
        ] {
            let mut reeval = ReevalPowers::new(a.clone(), model, k).unwrap();
            let mut incr = IncrPowers::new(a.clone(), model, k).unwrap();
            let mut stream = UpdateStream::new(n, n, 0.01, 17);
            for _ in 0..8 {
                let upd = stream.next_rank_one();
                reeval.apply(&upd).unwrap();
                incr.apply(&upd).unwrap();
            }
            assert!(
                incr.result().approx_eq(reeval.result(), 1e-7),
                "model {model} diverged"
            );
        }
    }

    #[test]
    fn batch_updates_agree() {
        let n = 16;
        let a = Matrix::random_spectral(n, 6, 0.8);
        let mut reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, 8).unwrap();
        let mut incr = IncrPowers::new(a, IterModel::Exponential, 8).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 23);
        let batch = stream.next_batch_zipf(6, 1.0).unwrap();
        reeval.apply_batch(&batch).unwrap();
        incr.apply_batch(&batch).unwrap();
        assert!(incr.result().approx_eq(reeval.result(), 1e-8));
    }

    #[test]
    fn incremental_materializes_more_memory() {
        let n = 16;
        let a = Matrix::random_spectral(n, 7, 0.8);
        let reeval = ReevalPowers::new(a.clone(), IterModel::Exponential, 16).unwrap();
        let incr = IncrPowers::new(a, IterModel::Exponential, 16).unwrap();
        // INCR holds A, P2, P4, P8, P16 (+P1); REEVAL holds A and P16.
        assert!(incr.memory_bytes() > 2 * reeval.memory_bytes());
    }

    #[test]
    fn intermediate_views_are_correct_powers() {
        let n = 10;
        let a = Matrix::random_spectral(n, 8, 0.9);
        let mut incr = IncrPowers::new(a.clone(), IterModel::Exponential, 8).unwrap();
        let upd = RankOneUpdate::row_update(n, n, 3, 0.01, 5);
        incr.apply(&upd).unwrap();
        let mut a_new = a;
        upd.apply_to(&mut a_new).unwrap();
        assert!(incr
            .power(4)
            .unwrap()
            .approx_eq(&brute_power(&a_new, 4), 1e-8));
    }
}
