//! Batch gradient descent for linear regression (§7 "General Form", B ≠ 0):
//! `Θᵢ₊₁ = Θᵢ − λ·Xᵀ(X·Θᵢ − Y)`, rewritten to the general iterative form
//! with `A = I − λ·XᵀX` and `B = λ·XᵀY`.
//!
//! A rank-1 update `ΔX = u vᵀ` to the observation matrix induces a *rank-2*
//! factored update to `A` (the `Δ(XᵀX)` of Example 4.3, negated and scaled)
//! and a rank-1 update to `B` — both handed to the [`GeneralForm`]
//! maintainer simultaneously. This is the workload of Fig. 3h.

use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;

use crate::general::{GeneralForm, Strategy};
use crate::{IterModel, Result};

/// Gradient-descent linear regression maintained under data updates.
#[derive(Debug, Clone)]
pub struct GradientDescentLR {
    x: Matrix,
    y: Matrix,
    lambda: f64,
    gf: GeneralForm,
}

impl GradientDescentLR {
    /// Builds the maintainer: `x : (m×n)` observations, `y : (m×p)` targets,
    /// learning rate `lambda`, `k` descent steps from `theta0 : (n×p)`.
    pub fn new(
        x: Matrix,
        y: Matrix,
        lambda: f64,
        theta0: Matrix,
        model: IterModel,
        k: usize,
        strategy: Strategy,
    ) -> Result<Self> {
        let n = x.cols();
        // A = I − λ·XᵀX.
        let xtx = x.transpose().try_matmul(&x)?;
        let a = Matrix::identity(n).try_sub(&xtx.scale(lambda))?;
        // B = λ·XᵀY.
        let b = x.transpose().try_matmul(&y)?.scale(lambda);
        let gf = GeneralForm::new(a, b, theta0, model, k, strategy)?;
        Ok(GradientDescentLR { x, y, lambda, gf })
    }

    /// Applies `ΔX = u vᵀ`: derives the induced `ΔA` (rank 2) and `ΔB`
    /// (rank 1) from the *old* `X` per Example 4.3, then fires the
    /// general-form maintainer.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        let u = &upd.u;
        let v = &upd.v;
        // Δ(XᵀX) = v·(uᵀX) + (Xᵀu + v·(uᵀu))·vᵀ  =  P Qᵀ with
        //   P = [v | Xᵀu + v·(uᵀu)],  Q = [Xᵀu | v].
        let xtu = self.x.transpose().try_matmul(u)?;
        let utu = Matrix::dot(u, u)?;
        let p2 = xtu.try_add(&v.scale(utu))?;
        let p = Matrix::hstack(&[v, &p2])?;
        let q = Matrix::hstack(&[&xtu, v])?;
        // ΔA = −λ·ΔZ.
        let dau = p.scale(-self.lambda);
        let dav = q;
        // ΔB = λ·(ΔXᵀ)·Y = λ·v·(uᵀY)ᵀ = (λ·v)·(Yᵀu)ᵀ.
        let dbu = v.scale(self.lambda);
        let dbv = self.y.transpose().try_matmul(u)?;
        self.gf.apply_factored(&dau, &dav, Some((&dbu, &dbv)))?;
        upd.apply_to(&mut self.x)?;
        Ok(())
    }

    /// The current parameter estimate `Θ_k`.
    pub fn theta(&self) -> &Matrix {
        self.gf.result()
    }

    /// The maintained iteration matrix `A = I − λXᵀX`.
    pub fn a(&self) -> &Matrix {
        self.gf.a()
    }

    /// Mean squared residual `‖XΘ − Y‖_F² / m` — convergence diagnostic.
    pub fn mse(&self) -> Result<f64> {
        let pred = self.x.try_matmul(self.theta())?;
        let resid = pred.try_sub(&self.y)?;
        let m = self.x.rows() as f64;
        Ok(resid.frobenius_norm().powi(2) / m)
    }

    /// Bytes held by the maintainer (views included).
    pub fn memory_bytes(&self) -> usize {
        self.x.memory_bytes() + self.y.memory_bytes() + self.gf.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    fn setup(m: usize, n: usize, p: usize, seed: u64) -> (Matrix, Matrix, Matrix, f64) {
        // Small-scale X keeps ‖I − λXᵀX‖ < 1 so descent converges.
        let x = Matrix::random_uniform(m, n, seed).scale(0.3);
        let y = Matrix::random_uniform(m, p, seed + 1);
        let theta0 = Matrix::zeros(n, p);
        (x, y, theta0, 0.5)
    }

    fn brute_descent(x: &Matrix, y: &Matrix, lambda: f64, theta0: &Matrix, k: usize) -> Matrix {
        let mut th = theta0.clone();
        for _ in 0..k {
            let grad = x
                .transpose()
                .try_matmul(&x.try_matmul(&th).unwrap().try_sub(y).unwrap())
                .unwrap();
            th = th.try_sub(&grad.scale(lambda)).unwrap();
        }
        th
    }

    #[test]
    fn initial_theta_matches_direct_descent() {
        let (x, y, theta0, lambda) = setup(12, 8, 2, 101);
        let gd = GradientDescentLR::new(
            x.clone(),
            y.clone(),
            lambda,
            theta0.clone(),
            IterModel::Linear,
            8,
            Strategy::Incremental,
        )
        .unwrap();
        let expected = brute_descent(&x, &y, lambda, &theta0, 8);
        assert!(gd.theta().approx_eq(&expected, 1e-9));
    }

    #[test]
    fn all_strategies_and_models_track_updates() {
        let (x, y, theta0, lambda) = setup(10, 6, 1, 103);
        for model in [
            IterModel::Linear,
            IterModel::Exponential,
            IterModel::Skip(2),
        ] {
            for strategy in [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid] {
                let mut gd = GradientDescentLR::new(
                    x.clone(),
                    y.clone(),
                    lambda,
                    theta0.clone(),
                    model,
                    8,
                    strategy,
                )
                .unwrap();
                let mut x_ref = x.clone();
                let mut stream = UpdateStream::new(10, 6, 0.01, 107);
                for _ in 0..5 {
                    let upd = stream.next_rank_one();
                    gd.apply(&upd).unwrap();
                    upd.apply_to(&mut x_ref).unwrap();
                }
                let expected = brute_descent(&x_ref, &y, lambda, &theta0, 8);
                assert!(
                    gd.theta().approx_eq(&expected, 1e-7),
                    "{model}/{} diverged",
                    strategy.label()
                );
            }
        }
    }

    #[test]
    fn descent_reduces_mse() {
        let (x, y, theta0, lambda) = setup(16, 8, 1, 109);
        let short = GradientDescentLR::new(
            x.clone(),
            y.clone(),
            lambda,
            theta0.clone(),
            IterModel::Linear,
            2,
            Strategy::Incremental,
        )
        .unwrap();
        let long = GradientDescentLR::new(
            x,
            y,
            lambda,
            theta0,
            IterModel::Linear,
            32,
            Strategy::Incremental,
        )
        .unwrap();
        assert!(long.mse().unwrap() < short.mse().unwrap());
    }

    #[test]
    fn iteration_matrix_is_maintained() {
        let (x, y, theta0, lambda) = setup(10, 6, 1, 113);
        let mut gd = GradientDescentLR::new(
            x.clone(),
            y,
            lambda,
            theta0,
            IterModel::Linear,
            4,
            Strategy::Incremental,
        )
        .unwrap();
        let upd = RankOneUpdate::row_update(10, 6, 3, 0.05, 5);
        gd.apply(&upd).unwrap();
        let mut x_new = x;
        upd.apply_to(&mut x_new).unwrap();
        let expected_a = Matrix::identity(6)
            .try_sub(&x_new.transpose().try_matmul(&x_new).unwrap().scale(lambda))
            .unwrap();
        assert!(gd.a().approx_eq(&expected_a, 1e-9));
    }
}
