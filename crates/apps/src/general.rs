//! The general iterative form `Tᵢ₊₁ = A·Tᵢ + B` (§5.3, Appendices A & B):
//! gradient descent, PageRank, linear solvers, and power iteration all share
//! this shape.
//!
//! Three maintenance strategies are implemented, exactly the ones Table 2
//! analyzes and Figs. 3g/3h measure:
//!
//! * **REEVAL** — update `A`/`B`, recompute with the model's minimal working
//!   set (`O(pn²k)` for LIN, `O((nᵞ+pn²)·log k)` for EXP, …).
//! * **INCR** — propagate *factored* deltas `ΔTᵢ = Uᵢ Vᵢᵀ` through the
//!   iterations, together with factored deltas of the auxiliary power and
//!   sum views `Pᵢ`, `Sᵢ` (the recurrences of Appendix B, implemented here
//!   numerically with block stacking).
//! * **HYBRID** — maintain `Pᵢ`/`Sᵢ` in factored form but represent `ΔTᵢ` as
//!   a single dense `n×p` matrix: when `p` is small (the `p = 1` PageRank
//!   regime), the factored form's bookkeeping costs more than the dense
//!   delta, and hybrid wins (Fig. 3g).
//!
//! The incremental path here is deliberately *hand-derived* (it mirrors the
//! appendix algebra) rather than routed through the compiler; integration
//! tests cross-validate it against both full re-evaluation and the compiled
//! triggers of the powers/sums apps.

use linview_matrix::Matrix;
use linview_runtime::RankOneUpdate;
use std::collections::BTreeMap;

use crate::{IterModel, Result};

/// Maintenance strategy for the general form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Full recomputation per update.
    Reeval,
    /// Factored delta propagation (Appendix B).
    Incremental,
    /// Factored `P`/`S` deltas, dense `ΔT` (§5.3 "Hybrid evaluation").
    Hybrid,
}

impl Strategy {
    /// Display label matching the paper's plots.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Reeval => "REEVAL",
            Strategy::Incremental => "INCR",
            Strategy::Hybrid => "HYBRID",
        }
    }
}

/// A numeric factored delta `Δ = u · vᵀ` (`u : rows_u×r`, `v : rows_v×r`).
/// Rank 0 (zero delta) is represented by zero-width factors, which lets the
/// block algebra below treat "no change" uniformly.
#[derive(Debug, Clone)]
struct Fd {
    u: Matrix,
    v: Matrix,
}

impl Fd {
    fn new(u: Matrix, v: Matrix) -> Self {
        debug_assert_eq!(u.cols(), v.cols());
        Fd { u, v }
    }

    fn zero(rows_u: usize, rows_v: usize) -> Self {
        Fd {
            u: Matrix::zeros(rows_u, 0),
            v: Matrix::zeros(rows_v, 0),
        }
    }

    fn rank(&self) -> usize {
        self.u.cols()
    }

    /// Materializes the dense delta.
    fn to_dense(&self) -> Result<Matrix> {
        if self.rank() == 0 {
            return Ok(Matrix::zeros(self.u.rows(), self.v.rows()));
        }
        Ok(self.u.try_matmul(&self.v.transpose())?)
    }

    /// Applies `target += u vᵀ`.
    fn apply_to(&self, target: &mut Matrix) -> Result<()> {
        if self.rank() == 0 {
            return Ok(());
        }
        target.add_assign_from(&self.to_dense()?)?;
        Ok(())
    }
}

/// The maintained computation `T_k` with auxiliary views per model.
#[derive(Debug, Clone)]
pub struct GeneralForm {
    model: IterModel,
    strategy: Strategy,
    k: usize,
    a: Matrix,
    b: Matrix,
    t0: Matrix,
    /// Materialized iterations (INCR/HYBRID: all scheduled; REEVAL: only k).
    t: BTreeMap<usize, Matrix>,
    /// Auxiliary matrix powers `Pᵢ` (EXP/SKIP models).
    p: BTreeMap<usize, Matrix>,
    /// Auxiliary power sums `Sᵢ` (EXP/SKIP models).
    s: BTreeMap<usize, Matrix>,
}

impl GeneralForm {
    /// Builds the view: evaluates all scheduled iterations (and the
    /// auxiliary `P`/`S` views the model needs) once.
    pub fn new(
        a: Matrix,
        b: Matrix,
        t0: Matrix,
        model: IterModel,
        k: usize,
        strategy: Strategy,
    ) -> Result<Self> {
        model.validate(k).expect("invalid model parameters");
        let mut gf = GeneralForm {
            model,
            strategy,
            k,
            a,
            b,
            t0,
            t: BTreeMap::new(),
            p: BTreeMap::new(),
            s: BTreeMap::new(),
        };
        gf.evaluate_all()?;
        if strategy == Strategy::Reeval {
            gf.drop_intermediates();
        }
        Ok(gf)
    }

    /// The indices of `P`/`S` views this model materializes.
    fn aux_indices(&self) -> Vec<usize> {
        match self.model {
            IterModel::Linear => vec![],
            IterModel::Exponential => {
                let mut v = vec![];
                let mut i = 1;
                while i <= self.k / 2 {
                    v.push(i);
                    i *= 2;
                }
                v
            }
            IterModel::Skip(s) => {
                let mut v = vec![];
                let mut i = 1;
                while i <= s {
                    v.push(i);
                    i *= 2;
                }
                v
            }
        }
    }

    /// Full evaluation of every scheduled `Tᵢ` (and `Pᵢ`, `Sᵢ`).
    fn evaluate_all(&mut self) -> Result<()> {
        let n = self.a.rows();
        // Auxiliary views by repeated squaring.
        self.p.clear();
        self.s.clear();
        let aux = self.aux_indices();
        if !aux.is_empty() {
            self.p.insert(1, self.a.clone());
            self.s.insert(1, Matrix::identity(n));
            let mut prev = 1;
            for &i in &aux[1..] {
                let ph = &self.p[&prev];
                let sh = &self.s[&prev];
                let s_new = ph.try_matmul(sh)?.try_add(sh)?;
                let p_new = ph.try_matmul(ph)?;
                self.p.insert(i, p_new);
                self.s.insert(i, s_new);
                prev = i;
            }
        }
        // Scheduled iterations.
        self.t.clear();
        let t1 = self.a.try_matmul(&self.t0)?.try_add(&self.b)?;
        self.t.insert(1, t1);
        for &i in self.model.iterations(self.k).iter().skip(1) {
            let next = match self.model {
                IterModel::Linear => self.a.try_matmul(&self.t[&(i - 1)])?.try_add(&self.b)?,
                IterModel::Exponential => {
                    let h = i / 2;
                    self.p[&h]
                        .try_matmul(&self.t[&h])?
                        .try_add(&self.s[&h].try_matmul(&self.b)?)?
                }
                IterModel::Skip(s) => {
                    if i <= s {
                        let h = i / 2;
                        self.p[&h]
                            .try_matmul(&self.t[&h])?
                            .try_add(&self.s[&h].try_matmul(&self.b)?)?
                    } else {
                        self.p[&s]
                            .try_matmul(&self.t[&(i - s)])?
                            .try_add(&self.s[&s].try_matmul(&self.b)?)?
                    }
                }
            };
            self.t.insert(i, next);
        }
        Ok(())
    }

    /// REEVAL keeps only the final iteration (Table 2's space column).
    fn drop_intermediates(&mut self) {
        let final_t = self.t.remove(&self.k);
        self.t.clear();
        if let Some(t) = final_t {
            self.t.insert(self.k, t);
        }
        self.p.clear();
        self.s.clear();
    }

    /// The maintained `T_k`.
    pub fn result(&self) -> &Matrix {
        &self.t[&self.k]
    }

    /// Reads a scheduled intermediate `Tᵢ` (INCR/HYBRID only).
    pub fn iteration(&self, i: usize) -> Option<&Matrix> {
        self.t.get(&i)
    }

    /// Current `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Current `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// Bytes held by all persistent state — the Table 2/3 space comparison.
    pub fn memory_bytes(&self) -> usize {
        self.a.memory_bytes()
            + self.b.memory_bytes()
            + self.t0.memory_bytes()
            + self.t.values().map(Matrix::memory_bytes).sum::<usize>()
            + self.p.values().map(Matrix::memory_bytes).sum::<usize>()
            + self.s.values().map(Matrix::memory_bytes).sum::<usize>()
    }

    /// Applies a rank-1 update to `A`.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        self.apply_factored(&upd.u, &upd.v, None)
    }

    /// Applies a batched rank-k update to `A` (Table 4's workload shape).
    pub fn apply_batch(&mut self, upd: &linview_runtime::BatchUpdate) -> Result<()> {
        self.apply_factored(&upd.u, &upd.v, None)
    }

    /// Applies a factored rank-k update `ΔA = dau davᵀ` and optionally a
    /// simultaneous `ΔB = dbu dbvᵀ` (needed by gradient descent, where one
    /// observation update perturbs both `A` and `B`).
    pub fn apply_factored(
        &mut self,
        dau: &Matrix,
        dav: &Matrix,
        db: Option<(&Matrix, &Matrix)>,
    ) -> Result<()> {
        match self.strategy {
            Strategy::Reeval => {
                let da = Fd::new(dau.clone(), dav.clone());
                da.apply_to(&mut self.a)?;
                if let Some((bu, bv)) = db {
                    Fd::new(bu.clone(), bv.clone()).apply_to(&mut self.b)?;
                }
                self.evaluate_all()?;
                self.drop_intermediates();
                Ok(())
            }
            Strategy::Incremental => self.apply_incremental(dau, dav, db, false),
            Strategy::Hybrid => self.apply_incremental(dau, dav, db, true),
        }
    }

    /// Shared INCR/HYBRID path; `dense_t` selects the hybrid representation
    /// for `ΔT`.
    fn apply_incremental(
        &mut self,
        dau: &Matrix,
        dav: &Matrix,
        db: Option<(&Matrix, &Matrix)>,
        dense_t: bool,
    ) -> Result<()> {
        let n = self.a.rows();
        let p_dim = self.b.cols();
        let da = Fd::new(dau.clone(), dav.clone());
        let dbf = match db {
            Some((bu, bv)) => Fd::new(bu.clone(), bv.clone()),
            None => Fd::zero(n, p_dim),
        };

        // Phase 1: factored deltas of the auxiliary views (Appendix A).
        let (dq, dz) = self.aux_deltas(&da)?;

        // Phase 2: deltas of the scheduled iterations (Appendix B).
        enum TDelta {
            Factored(Fd),
            Dense(Matrix),
        }
        let mut dt: BTreeMap<usize, TDelta> = BTreeMap::new();
        for &i in &self.model.iterations(self.k) {
            let delta = if i == 1 {
                // T₁ = A·T₀ + B: ΔT₁ = ΔA·T₀ + ΔB.
                if dense_t {
                    let mut d = da.u.try_matmul(&da.v.transpose().try_matmul(&self.t0)?)?;
                    d.add_assign_from(&dbf.to_dense()?)?;
                    TDelta::Dense(d)
                } else {
                    let u = Matrix::hstack(&[&da.u, &dbf.u])?;
                    let v = Matrix::hstack(&[&self.t0.transpose().try_matmul(&da.v)?, &dbf.v])?;
                    TDelta::Factored(Fd::new(u, v))
                }
            } else {
                // Pick the recurrence operands for this model and index:
                // T_i = P·T_prev + S·B with (P, S, prev) below; for LIN,
                // P = A with ΔP = ΔA and S·B collapses into +B (ΔS = 0).
                let (p_mat, dp, s_pair, prev): (&Matrix, &Fd, Option<(&Matrix, &Fd)>, usize) =
                    match self.model {
                        IterModel::Linear => (&self.a, &da, None, i - 1),
                        IterModel::Exponential => {
                            let h = i / 2;
                            (&self.p[&h], &dq[&h], Some((&self.s[&h], &dz[&h])), h)
                        }
                        IterModel::Skip(s) => {
                            if i <= s {
                                let h = i / 2;
                                (&self.p[&h], &dq[&h], Some((&self.s[&h], &dz[&h])), h)
                            } else {
                                (&self.p[&s], &dq[&s], Some((&self.s[&s], &dz[&s])), i - s)
                            }
                        }
                    };
                let t_prev = &self.t[&prev];
                match (&dt[&prev], dense_t) {
                    (TDelta::Factored(dt_prev), false) => {
                        // U = [ΔP.u | P·U + ΔP.u·(ΔP.vᵀ·U) | sum-terms…]
                        let mid = p_mat.try_matmul(&dt_prev.u)?.try_add(
                            &dp.u.try_matmul(&dp.v.transpose().try_matmul(&dt_prev.u)?)?,
                        )?;
                        let mut us = vec![dp.u.clone(), mid];
                        let mut vs = vec![t_prev.transpose().try_matmul(&dp.v)?, dt_prev.v.clone()];
                        if let Some((s_mat, ds)) = s_pair {
                            // ΔS·B term.
                            us.push(ds.u.clone());
                            vs.push(self.b.transpose().try_matmul(&ds.v)?);
                            // (S + ΔS)·ΔB term.
                            if dbf.rank() > 0 {
                                let sbu = s_mat.try_matmul(&dbf.u)?.try_add(
                                    &ds.u.try_matmul(&ds.v.transpose().try_matmul(&dbf.u)?)?,
                                )?;
                                us.push(sbu);
                                vs.push(dbf.v.clone());
                            }
                        } else if dbf.rank() > 0 {
                            // Linear model: + ΔB directly.
                            us.push(dbf.u.clone());
                            vs.push(dbf.v.clone());
                        }
                        let urefs: Vec<&Matrix> = us.iter().collect();
                        let vrefs: Vec<&Matrix> = vs.iter().collect();
                        TDelta::Factored(Fd::new(Matrix::hstack(&urefs)?, Matrix::hstack(&vrefs)?))
                    }
                    (TDelta::Dense(dt_prev), true) => {
                        // Dense: ΔT = ΔP·T_prev + P·ΔT + ΔP·ΔT + Δ(S·B).
                        let mut d = dp.u.try_matmul(&dp.v.transpose().try_matmul(t_prev)?)?;
                        d.add_assign_from(&p_mat.try_matmul(dt_prev)?)?;
                        d.add_assign_from(
                            &dp.u.try_matmul(&dp.v.transpose().try_matmul(dt_prev)?)?,
                        )?;
                        if let Some((s_mat, ds)) = s_pair {
                            if ds.rank() > 0 {
                                d.add_assign_from(
                                    &ds.u.try_matmul(&ds.v.transpose().try_matmul(&self.b)?)?,
                                )?;
                            }
                            if dbf.rank() > 0 {
                                let db_dense = dbf.to_dense()?;
                                d.add_assign_from(&s_mat.try_matmul(&db_dense)?)?;
                                if ds.rank() > 0 {
                                    d.add_assign_from(
                                        &ds.u
                                            .try_matmul(&ds.v.transpose().try_matmul(&db_dense)?)?,
                                    )?;
                                }
                            }
                        } else if dbf.rank() > 0 {
                            d.add_assign_from(&dbf.to_dense()?)?;
                        }
                        TDelta::Dense(d)
                    }
                    _ => unreachable!("delta representation is uniform per strategy"),
                }
            };
            dt.insert(i, delta);
        }

        // Phase 3: apply all deltas (old values were used throughout).
        for (i, d) in &dq {
            d.apply_to(self.p.get_mut(i).expect("aux view exists"))?;
        }
        for (i, d) in &dz {
            d.apply_to(self.s.get_mut(i).expect("aux view exists"))?;
        }
        for (i, d) in dt {
            let target = self.t.get_mut(&i).expect("iteration view exists");
            match d {
                TDelta::Factored(fd) => fd.apply_to(target)?,
                TDelta::Dense(m) => target.add_assign_from(&m)?,
            }
        }
        da.apply_to(&mut self.a)?;
        dbf.apply_to(&mut self.b)?;
        Ok(())
    }

    /// Appendix A: factored deltas of `Pᵢ` and `Sᵢ` for all materialized
    /// auxiliary indices, given `ΔA = da`.
    fn aux_deltas(&self, da: &Fd) -> Result<(BTreeMap<usize, Fd>, BTreeMap<usize, Fd>)> {
        let n = self.a.rows();
        let mut dq = BTreeMap::new();
        let mut dz = BTreeMap::new();
        let aux = self.aux_indices();
        if aux.is_empty() {
            return Ok((dq, dz));
        }
        dq.insert(1, da.clone());
        dz.insert(1, Fd::zero(n, n)); // S₁ = I is constant.
        let mut prev = 1;
        for &i in &aux[1..] {
            let ph = &self.p[&prev];
            let sh = &self.s[&prev];
            let q: &Fd = &dq[&prev];
            let z: &Fd = &dz[&prev];
            // ΔP_i: U = [Q | P·Q + Q·(RᵀQ)], V = [PᵀR | R].
            let mid = ph
                .try_matmul(&q.u)?
                .try_add(&q.u.try_matmul(&q.v.transpose().try_matmul(&q.u)?)?)?;
            let qu = Matrix::hstack(&[&q.u, &mid])?;
            let qv = Matrix::hstack(&[&ph.transpose().try_matmul(&q.v)?, &q.v])?;
            // ΔS_i for S_i = P·S + S:
            //   U = [Q | P·Z + Q·(RᵀZ) + Z], V = [SᵀR | W].
            let mut s_mid = ph.try_matmul(&z.u)?;
            s_mid.add_assign_from(&q.u.try_matmul(&q.v.transpose().try_matmul(&z.u)?)?)?;
            s_mid.add_assign_from(&z.u)?;
            let zu = Matrix::hstack(&[&q.u, &s_mid])?;
            let zv = Matrix::hstack(&[&sh.transpose().try_matmul(&q.v)?, &z.v])?;
            dq.insert(i, Fd::new(qu, qv));
            dz.insert(i, Fd::new(zu, zv));
            prev = i;
        }
        Ok((dq, dz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    /// Brute-force k iterations of T ← A·T + B.
    fn brute(a: &Matrix, b: &Matrix, t0: &Matrix, k: usize) -> Matrix {
        let mut t = t0.clone();
        for _ in 0..k {
            t = a.try_matmul(&t).unwrap().try_add(b).unwrap();
        }
        t
    }

    fn setup(n: usize, p: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Matrix::random_spectral(n, seed, 0.8),
            Matrix::random_uniform(n, p, seed + 1),
            Matrix::random_uniform(n, p, seed + 2),
        )
    }

    #[test]
    fn initial_evaluation_matches_brute_force() {
        let (a, b, t0) = setup(10, 3, 41);
        for model in IterModel::paper_lineup() {
            let gf = GeneralForm::new(
                a.clone(),
                b.clone(),
                t0.clone(),
                model,
                16,
                Strategy::Incremental,
            )
            .unwrap();
            assert!(
                gf.result().approx_eq(&brute(&a, &b, &t0, 16), 1e-9),
                "model {model} initial evaluation wrong"
            );
        }
    }

    #[test]
    fn all_strategies_track_updates_for_all_models() {
        let n = 12;
        let p = 3;
        let k = 8;
        let (a, b, t0) = setup(n, p, 43);
        for model in [
            IterModel::Linear,
            IterModel::Exponential,
            IterModel::Skip(2),
            IterModel::Skip(4),
        ] {
            for strategy in [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid] {
                let mut gf =
                    GeneralForm::new(a.clone(), b.clone(), t0.clone(), model, k, strategy).unwrap();
                let mut a_ref = a.clone();
                let mut stream = UpdateStream::new(n, n, 0.01, 47);
                for _ in 0..6 {
                    let upd = stream.next_rank_one();
                    gf.apply(&upd).unwrap();
                    upd.apply_to(&mut a_ref).unwrap();
                }
                let expected = brute(&a_ref, &b, &t0, k);
                assert!(
                    gf.result().approx_eq(&expected, 1e-7),
                    "{model}/{} diverged",
                    strategy.label()
                );
            }
        }
    }

    #[test]
    fn simultaneous_a_and_b_updates() {
        // The gradient-descent pattern: ΔA rank-2, ΔB rank-1 per update.
        let n = 10;
        let p = 2;
        let k = 8;
        let (a, b, t0) = setup(n, p, 53);
        for strategy in [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid] {
            let mut gf = GeneralForm::new(
                a.clone(),
                b.clone(),
                t0.clone(),
                IterModel::Exponential,
                k,
                strategy,
            )
            .unwrap();
            let dau = Matrix::random_uniform(n, 2, 60).scale(0.01);
            let dav = Matrix::random_uniform(n, 2, 61);
            let dbu = Matrix::random_uniform(n, 1, 62).scale(0.01);
            let dbv = Matrix::random_uniform(p, 1, 63);
            gf.apply_factored(&dau, &dav, Some((&dbu, &dbv))).unwrap();
            let mut a_new = a.clone();
            a_new
                .add_assign_from(&dau.try_matmul(&dav.transpose()).unwrap())
                .unwrap();
            let mut b_new = b.clone();
            b_new
                .add_assign_from(&dbu.try_matmul(&dbv.transpose()).unwrap())
                .unwrap();
            let expected = brute(&a_new, &b_new, &t0, k);
            assert!(
                gf.result().approx_eq(&expected, 1e-8),
                "{} diverged on simultaneous update",
                strategy.label()
            );
        }
    }

    #[test]
    fn batched_updates_track_reevaluation() {
        let (a, b, t0) = setup(12, 2, 91);
        let mut incr = GeneralForm::new(
            a.clone(),
            b.clone(),
            t0.clone(),
            IterModel::Exponential,
            8,
            Strategy::Incremental,
        )
        .unwrap();
        let mut stream = linview_runtime::UpdateStream::new(12, 12, 0.01, 93);
        let batch = stream.next_batch_zipf(6, 1.5).unwrap();
        incr.apply_batch(&batch).unwrap();
        let mut a_ref = a;
        a_ref.add_assign_from(&batch.to_dense().unwrap()).unwrap();
        assert!(incr.result().approx_eq(&brute(&a_ref, &b, &t0, 8), 1e-8));
    }

    #[test]
    fn p1_column_vector_case() {
        // The PageRank regime: p = 1 where hybrid is designed to win.
        let (a, b, t0) = setup(16, 1, 71);
        let mut hybrid = GeneralForm::new(
            a.clone(),
            b.clone(),
            t0.clone(),
            IterModel::Linear,
            8,
            Strategy::Hybrid,
        )
        .unwrap();
        let mut a_ref = a;
        let mut stream = UpdateStream::new(16, 16, 0.01, 73);
        for _ in 0..10 {
            let upd = stream.next_rank_one();
            hybrid.apply(&upd).unwrap();
            upd.apply_to(&mut a_ref).unwrap();
        }
        assert!(hybrid.result().approx_eq(&brute(&a_ref, &b, &t0, 8), 1e-8));
    }

    #[test]
    fn reeval_stores_less_than_incremental() {
        let (a, b, t0) = setup(16, 4, 79);
        let reeval = GeneralForm::new(
            a.clone(),
            b.clone(),
            t0.clone(),
            IterModel::Exponential,
            16,
            Strategy::Reeval,
        )
        .unwrap();
        let incr =
            GeneralForm::new(a, b, t0, IterModel::Exponential, 16, Strategy::Incremental).unwrap();
        assert!(incr.memory_bytes() > reeval.memory_bytes());
        assert!(incr.iteration(8).is_some());
        assert!(reeval.iteration(8).is_none());
    }

    #[test]
    fn aux_views_match_direct_powers_after_updates() {
        let (a, b, t0) = setup(10, 2, 83);
        let mut gf = GeneralForm::new(
            a.clone(),
            b,
            t0,
            IterModel::Exponential,
            16,
            Strategy::Incremental,
        )
        .unwrap();
        let mut a_ref = a;
        let mut stream = UpdateStream::new(10, 10, 0.01, 89);
        for _ in 0..5 {
            let upd = stream.next_rank_one();
            gf.apply(&upd).unwrap();
            upd.apply_to(&mut a_ref).unwrap();
        }
        // P₈ must equal A⁸ of the updated A; S₄ must equal I+A+A²+A³.
        let p8 = crate::powers::compute_power(&a_ref, IterModel::Exponential, 8).unwrap();
        assert!(gf.p[&8].approx_eq(&p8, 1e-8));
        let s4 = crate::sums::compute_sum(&a_ref, IterModel::Exponential, 4).unwrap();
        assert!(gf.s[&4].approx_eq(&s4, 1e-8));
    }
}
