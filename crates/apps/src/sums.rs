//! Sums of matrix powers `S_k = I + A + … + Aᵏ⁻¹` (§5.2.3) — the second
//! auxiliary view the general iterative form needs, with the same REEVAL /
//! INCR pairing as the powers app (Fig. 3d).

use linview_compiler::Program;
use linview_expr::{Catalog, Expr};
use linview_matrix::Matrix;
use linview_runtime::{BatchUpdate, ExecBackend, IncrementalView, LocalBackend, RankOneUpdate};

use crate::powers::{compute_power, power_view};
use crate::{IterModel, Result};

/// Name of the view holding `Sᵢ = I + A + … + Aⁱ⁻¹`.
pub fn sum_view(i: usize) -> String {
    format!("S{i}")
}

/// Builds the program computing `S_k` under `model` (the "Sums of Matrix
/// Powers" column of Table 1). The exponential and skip models interleave
/// the power views `Pᵢ` they depend on. Returns the program and the final
/// view name.
pub fn sums_program(model: IterModel, k: usize, n: usize) -> (Program, String) {
    let mut prog = Program::new();
    match model {
        IterModel::Linear => {
            prog.assign(sum_view(1), Expr::identity(n));
            for i in 2..=k {
                prog.assign(
                    sum_view(i),
                    Expr::var("A") * Expr::var(sum_view(i - 1)) + Expr::identity(n),
                );
            }
        }
        IterModel::Exponential => {
            prog.assign(power_view(1), Expr::var("A"));
            prog.assign(sum_view(1), Expr::identity(n));
            let mut i = 2;
            while i <= k {
                prog.assign(
                    sum_view(i),
                    Expr::var(power_view(i / 2)) * Expr::var(sum_view(i / 2))
                        + Expr::var(sum_view(i / 2)),
                );
                if i < k {
                    // P_k itself is never read; skip materializing it.
                    prog.assign(
                        power_view(i),
                        Expr::var(power_view(i / 2)) * Expr::var(power_view(i / 2)),
                    );
                }
                i *= 2;
            }
        }
        IterModel::Skip(s) => {
            // Exponential phase up to s (P and S both needed at s).
            prog.assign(power_view(1), Expr::var("A"));
            prog.assign(sum_view(1), Expr::identity(n));
            let mut i = 2;
            while i <= s {
                prog.assign(
                    sum_view(i),
                    Expr::var(power_view(i / 2)) * Expr::var(sum_view(i / 2))
                        + Expr::var(sum_view(i / 2)),
                );
                prog.assign(
                    power_view(i),
                    Expr::var(power_view(i / 2)) * Expr::var(power_view(i / 2)),
                );
                i *= 2;
            }
            // Strided phase: S_i = P_s S_{i-s} + S_s.
            let mut i = 2 * s;
            while i <= k {
                prog.assign(
                    sum_view(i),
                    Expr::var(power_view(s)) * Expr::var(sum_view(i - s)) + Expr::var(sum_view(s)),
                );
                i += s;
            }
        }
    }
    (prog, sum_view(k))
}

/// Directly computes `S_k` with the model's minimal working set.
pub fn compute_sum(a: &Matrix, model: IterModel, k: usize) -> Result<Matrix> {
    model.validate(k).expect("invalid model parameters");
    let n = a.rows();
    Ok(match model {
        IterModel::Linear => {
            let mut s = Matrix::identity(n);
            for _ in 2..=k {
                s = a.try_matmul(&s)?.try_add(&Matrix::identity(n))?;
            }
            s
        }
        IterModel::Exponential => {
            let mut p = a.clone();
            let mut s = Matrix::identity(n);
            let mut i = 1;
            while i < k {
                s = p.try_matmul(&s)?.try_add(&s)?;
                i *= 2;
                if i < k {
                    p = p.try_matmul(&p)?;
                }
            }
            s
        }
        IterModel::Skip(sz) => {
            let ps = compute_power(a, IterModel::Exponential, sz)?;
            let ss = compute_sum(a, IterModel::Exponential, sz)?;
            let mut s = ss.clone();
            let mut i = sz;
            while i < k {
                s = ps.try_matmul(&s)?.try_add(&ss)?;
                i += sz;
            }
            s
        }
    })
}

/// Re-evaluation maintainer for `S_k`.
#[derive(Debug, Clone)]
pub struct ReevalSums {
    model: IterModel,
    k: usize,
    a: Matrix,
    result: Matrix,
}

impl ReevalSums {
    /// Builds the view (one full evaluation).
    pub fn new(a: Matrix, model: IterModel, k: usize) -> Result<Self> {
        let result = compute_sum(&a, model, k)?;
        Ok(ReevalSums {
            model,
            k,
            a,
            result,
        })
    }

    /// Applies a rank-1 update and re-evaluates.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        upd.apply_to(&mut self.a)?;
        self.result = compute_sum(&self.a, self.model, self.k)?;
        Ok(())
    }

    /// Applies a batched update and re-evaluates.
    pub fn apply_batch(&mut self, upd: &BatchUpdate) -> Result<()> {
        self.a.add_assign_from(&upd.to_dense()?)?;
        self.result = compute_sum(&self.a, self.model, self.k)?;
        Ok(())
    }

    /// The maintained `S_k`.
    pub fn result(&self) -> &Matrix {
        &self.result
    }

    /// Persistent state bytes.
    pub fn memory_bytes(&self) -> usize {
        self.a.memory_bytes() + self.result.memory_bytes()
    }
}

/// Incremental maintainer for `S_k` via the compiled trigger program,
/// executable on any [`ExecBackend`].
#[derive(Debug, Clone)]
pub struct IncrSums<B: ExecBackend = LocalBackend> {
    view: IncrementalView<B>,
    final_view: String,
}

impl IncrSums {
    /// Compiles the model's program and materializes all views.
    pub fn new(a: Matrix, model: IterModel, k: usize) -> Result<Self> {
        Self::new_on(LocalBackend, a, model, k)
    }
}

impl<B: ExecBackend> IncrSums<B> {
    /// As [`IncrSums::new`] on an explicit execution backend.
    pub fn new_on(backend: B, a: Matrix, model: IterModel, k: usize) -> Result<Self> {
        let n = a.rows();
        let (program, final_view) = sums_program(model, k, n);
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        let view = IncrementalView::build_on(backend, &program, &[("A", a)], &cat)?;
        Ok(IncrSums { view, final_view })
    }

    /// Fires the compiled trigger for a rank-1 update.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        self.view.apply("A", upd)
    }

    /// Fires the compiled trigger for a batched update.
    pub fn apply_batch(&mut self, upd: &BatchUpdate) -> Result<()> {
        self.view.apply_batch("A", upd)
    }

    /// The maintained `S_k`.
    pub fn result(&self) -> &Matrix {
        self.view.get(&self.final_view).expect("final view exists")
    }

    /// Persistent state bytes (all materialized iterations).
    pub fn memory_bytes(&self) -> usize {
        self.view.memory_bytes()
    }

    /// Turns on the wait-free snapshot read path over every maintained
    /// partial sum (see [`linview_runtime::snapshot`]). Returns a
    /// cloneable reader handle.
    pub fn enable_serving(&mut self, publish_every: u64) -> linview_runtime::ViewHandle {
        self.view.enable_serving(publish_every)
    }

    /// A reader handle onto the published snapshots, when serving is on.
    pub fn serving_handle(&self) -> Option<linview_runtime::ViewHandle> {
        self.view.serving_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    fn brute_sum(a: &Matrix, k: usize) -> Matrix {
        let n = a.rows();
        let mut acc = Matrix::identity(n);
        let mut p = Matrix::identity(n);
        for _ in 1..k {
            p = p.try_matmul(a).unwrap();
            acc.add_assign_from(&p).unwrap();
        }
        acc
    }

    #[test]
    fn compute_sum_agrees_across_models() {
        let a = Matrix::random_spectral(10, 4, 0.8);
        let expected = brute_sum(&a, 16);
        for model in IterModel::paper_lineup() {
            let s = compute_sum(&a, model, 16).unwrap();
            assert!(
                s.approx_eq(&expected, 1e-9),
                "model {model} disagrees with brute force"
            );
        }
    }

    #[test]
    fn sums_program_evaluates_correctly() {
        // Initial evaluation through the generic runtime must match.
        let n = 8;
        let a = Matrix::random_spectral(n, 9, 0.8);
        for model in [
            IterModel::Linear,
            IterModel::Exponential,
            IterModel::Skip(2),
        ] {
            let incr = IncrSums::new(a.clone(), model, 8).unwrap();
            assert!(
                incr.result().approx_eq(&brute_sum(&a, 8), 1e-9),
                "model {model} initial evaluation wrong"
            );
        }
    }

    #[test]
    fn incremental_matches_reeval_over_stream() {
        let n = 12;
        let k = 8;
        let a = Matrix::random_spectral(n, 11, 0.8);
        for model in [
            IterModel::Linear,
            IterModel::Exponential,
            IterModel::Skip(4),
        ] {
            let mut reeval = ReevalSums::new(a.clone(), model, k).unwrap();
            let mut incr = IncrSums::new(a.clone(), model, k).unwrap();
            let mut stream = UpdateStream::new(n, n, 0.01, 29);
            for _ in 0..6 {
                let upd = stream.next_rank_one();
                reeval.apply(&upd).unwrap();
                incr.apply(&upd).unwrap();
            }
            assert!(
                incr.result().approx_eq(reeval.result(), 1e-7),
                "model {model} diverged"
            );
        }
    }

    #[test]
    fn batch_updates_agree() {
        let n = 12;
        let a = Matrix::random_spectral(n, 13, 0.8);
        let mut reeval = ReevalSums::new(a.clone(), IterModel::Exponential, 8).unwrap();
        let mut incr = IncrSums::new(a, IterModel::Exponential, 8).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 31);
        let batch = stream.next_batch_zipf(5, 2.0).unwrap();
        reeval.apply_batch(&batch).unwrap();
        incr.apply_batch(&batch).unwrap();
        assert!(incr.result().approx_eq(reeval.result(), 1e-8));
    }

    #[test]
    fn s1_stays_identity_under_updates() {
        // ΔS₁ = 0: the compiler must skip updating the constant view.
        let n = 8;
        let a = Matrix::random_spectral(n, 15, 0.8);
        let mut incr = IncrSums::new(a, IterModel::Exponential, 4).unwrap();
        incr.apply(&RankOneUpdate::row_update(n, n, 1, 0.1, 3))
            .unwrap();
        assert!(incr
            .view
            .get("S1")
            .unwrap()
            .approx_eq(&Matrix::identity(n), 1e-12));
    }
}
