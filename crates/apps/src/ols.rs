//! Ordinary Least Squares `β* = (XᵀX)⁻¹ XᵀY` (§5.1) — the application that
//! exercises incremental matrix-inverse maintenance via Sherman–Morrison.
//!
//! Re-evaluation pays `O(nᵞ + mn²)` per update (the inversion dominates);
//! the incremental trigger pays `O(n² + mn)` (Example 4.2/4.3, Fig. 3e).
//!
//! Three maintainers are provided: [`ReevalOls`] (baseline), [`IncrOls`]
//! (the compiled Sherman–Morrison trigger), and [`CholOls`] — the §4.2
//! factorization-update extension ("rank-1 updates in different matrix
//! factorizations, like SVD and Cholesky decomposition … we can further use
//! these new primitives to enrich our language"), which maintains the
//! Cholesky factor of the Gram matrix instead of its explicit inverse.

use linview_compiler::parse::parse_program;
use linview_expr::Catalog;
use linview_matrix::{Cholesky, Matrix};
use linview_runtime::{ExecBackend, IncrementalView, LocalBackend, RankOneUpdate, RuntimeError};

use crate::Result;

/// The textual OLS program fed to the compiler frontend.
pub const OLS_PROGRAM: &str = "Z := X' * X;\nW := inv(Z);\nbeta := W * X' * Y;";

/// Re-evaluation baseline: recomputes the estimator from scratch.
#[derive(Debug, Clone)]
pub struct ReevalOls {
    x: Matrix,
    y: Matrix,
    beta: Matrix,
}

impl ReevalOls {
    /// Builds the estimator for predictors `x : (m×n)` and responses
    /// `y : (m×p)`.
    pub fn new(x: Matrix, y: Matrix) -> Result<Self> {
        let beta = Self::solve(&x, &y)?;
        Ok(ReevalOls { x, y, beta })
    }

    fn solve(x: &Matrix, y: &Matrix) -> Result<Matrix> {
        let z = x.transpose().try_matmul(x)?;
        let w = z.inverse()?;
        Ok(w.try_matmul(&x.transpose().try_matmul(y)?)?)
    }

    /// Applies an update to `X` and recomputes `β*`.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        upd.apply_to(&mut self.x)?;
        self.beta = Self::solve(&self.x, &self.y)?;
        Ok(())
    }

    /// The current estimate.
    pub fn beta(&self) -> &Matrix {
        &self.beta
    }
}

/// Incremental estimator: the compiled trigger program maintains `Z = XᵀX`,
/// `W = Z⁻¹` (via Sherman–Morrison), and `β*` under updates to `X`, on any
/// [`ExecBackend`].
#[derive(Debug, Clone)]
pub struct IncrOls<B: ExecBackend = LocalBackend> {
    view: IncrementalView<B>,
}

impl IncrOls {
    /// Compiles the OLS program and materializes `Z`, `W`, `β*`.
    pub fn new(x: Matrix, y: Matrix) -> Result<Self> {
        Self::new_on(LocalBackend, x, y)
    }
}

impl<B: ExecBackend> IncrOls<B> {
    /// As [`IncrOls::new`] on an explicit execution backend.
    pub fn new_on(backend: B, x: Matrix, y: Matrix) -> Result<Self> {
        let mut cat = Catalog::new();
        cat.declare("X", x.rows(), x.cols());
        cat.declare("Y", y.rows(), y.cols());
        let program = parse_program(OLS_PROGRAM)
            .map_err(|e| RuntimeError::Unbound(format!("OLS program parse failure: {e}")))?;
        let view = IncrementalView::build_on(backend, &program, &[("X", x), ("Y", y)], &cat)?;
        Ok(IncrOls { view })
    }

    /// Fires the trigger for an update to `X`.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        self.view.apply("X", upd)
    }

    /// The current estimate.
    pub fn beta(&self) -> &Matrix {
        self.view.get("beta").expect("beta is materialized")
    }

    /// The maintained inverse `W = (XᵀX)⁻¹` (for tests and diagnostics).
    pub fn inverse_view(&self) -> &Matrix {
        self.view.get("W").expect("W is materialized")
    }

    /// The compiled trigger program.
    pub fn trigger_program(&self) -> &linview_compiler::TriggerProgram {
        self.view.trigger_program()
    }

    /// Turns on the wait-free snapshot read path over `Z`, `W`, and `β*`
    /// (see [`linview_runtime::snapshot`]). Returns a cloneable reader
    /// handle.
    pub fn enable_serving(&mut self, publish_every: u64) -> linview_runtime::ViewHandle {
        self.view.enable_serving(publish_every)
    }

    /// A reader handle onto the published snapshots, when serving is on.
    pub fn serving_handle(&self) -> Option<linview_runtime::ViewHandle> {
        self.view.serving_handle()
    }
}

/// Cholesky-based incremental estimator: maintains `L·Lᵀ = XᵀX` under
/// rank-1 updates to `X` and solves for `β*` by two triangular solves.
///
/// For `ΔX = u·vᵀ` the Gram update is the symmetric rank-2(+1) change
///
/// ```text
/// ΔZ = v·sᵀ + s·vᵀ + α·v·vᵀ      with s = Xᵀu, α = uᵀu
///    = ½(v+s)(v+s)ᵀ − ½(v−s)(v−s)ᵀ + α·v·vᵀ
/// ```
///
/// i.e. two hyperbolic updates and one downdate of the factor — `O(n²)`
/// each, the same asymptotics as Sherman–Morrison but without ever forming
/// `(XᵀX)⁻¹` explicitly (the numerically preferred route when `XᵀX` is
/// ill-conditioned).
#[derive(Debug, Clone)]
pub struct CholOls {
    x: Matrix,
    y: Matrix,
    chol: Cholesky,
    /// Maintained right-hand side `XᵀY : (n×p)`.
    xty: Matrix,
    beta: Matrix,
}

impl CholOls {
    /// Factorizes `XᵀX` and solves for the initial estimate.
    pub fn new(x: Matrix, y: Matrix) -> Result<Self> {
        let z = x.transpose().try_matmul(&x)?;
        let chol = Cholesky::factorize(&z)?;
        let xty = x.transpose().try_matmul(&y)?;
        let beta = chol.solve(&xty)?;
        Ok(CholOls {
            x,
            y,
            chol,
            xty,
            beta,
        })
    }

    /// Applies `ΔX = u·vᵀ`: three rank-1 factor operations, one rank-1
    /// right-hand-side update, and a triangular re-solve — `O(n² + mn + n²p)`.
    ///
    /// Fails with a singular error if the update destroys positive
    /// definiteness (`X` lost full column rank); the state is left
    /// untouched in that case.
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        let s = self.x.transpose().try_matmul(&upd.u)?;
        let alpha = Matrix::dot(&upd.u, &upd.u)?;
        let half = 0.5_f64.sqrt();
        let w_plus = upd.v.try_add(&s)?.scale(half);
        let w_minus = upd.v.try_sub(&s)?.scale(half);
        // Apply on a copy so a failed downdate leaves the state intact;
        // updates first keeps the intermediate factor safely PD.
        let mut chol = self.chol.clone();
        chol.update(&w_plus)?;
        if alpha > 0.0 {
            chol.update(&upd.v.scale(alpha.sqrt()))?;
        }
        chol.downdate(&w_minus)?;
        self.chol = chol;
        // Δ(XᵀY) = v·(uᵀY) — rank 1, O(mp + np).
        let uty = self.y.transpose().try_matmul(&upd.u)?; // p×1
        self.xty.add_assign_from(&Matrix::outer(&upd.v, &uty)?)?;
        upd.apply_to(&mut self.x)?;
        self.beta = self.chol.solve(&self.xty)?;
        Ok(())
    }

    /// The current estimate.
    pub fn beta(&self) -> &Matrix {
        &self.beta
    }

    /// The maintained Cholesky factor of `XᵀX`.
    pub fn factor(&self) -> &Cholesky {
        &self.chol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    fn well_conditioned_x(n: usize, seed: u64) -> Matrix {
        Matrix::random_diag_dominant(n, seed)
    }

    #[test]
    fn beta_solves_the_normal_equations() {
        // With square invertible X, β = X⁻¹Y exactly.
        let x = well_conditioned_x(10, 3);
        let y = Matrix::random_uniform(10, 2, 4);
        let ols = ReevalOls::new(x.clone(), y.clone()).unwrap();
        let direct = x.inverse().unwrap().try_matmul(&y).unwrap();
        assert!(ols.beta().approx_eq(&direct, 1e-6));
    }

    #[test]
    fn incremental_tracks_reeval_under_updates() {
        let n = 12;
        let x = well_conditioned_x(n, 5);
        let y = Matrix::random_uniform(n, 1, 6);
        let mut reeval = ReevalOls::new(x.clone(), y.clone()).unwrap();
        let mut incr = IncrOls::new(x, y).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.001, 7);
        for _ in 0..12 {
            let upd = stream.next_rank_one();
            reeval.apply(&upd).unwrap();
            incr.apply(&upd).unwrap();
        }
        assert!(incr.beta().approx_eq(reeval.beta(), 1e-6));
    }

    #[test]
    fn maintained_inverse_stays_consistent() {
        let n = 10;
        let x = well_conditioned_x(n, 8);
        let y = Matrix::random_uniform(n, 1, 9);
        let mut incr = IncrOls::new(x.clone(), y).unwrap();
        let mut x_ref = x;
        let mut stream = UpdateStream::new(n, n, 0.001, 10);
        for _ in 0..8 {
            let upd = stream.next_rank_one();
            incr.apply(&upd).unwrap();
            upd.apply_to(&mut x_ref).unwrap();
        }
        let z = x_ref.transpose().try_matmul(&x_ref).unwrap();
        assert!(incr.inverse_view().approx_eq(&z.inverse().unwrap(), 1e-6));
    }

    #[test]
    fn trigger_uses_sherman_morrison() {
        let x = well_conditioned_x(8, 11);
        let y = Matrix::random_uniform(8, 1, 12);
        let incr = IncrOls::new(x, y).unwrap();
        let text = incr.trigger_program().to_string();
        assert!(text.contains("sherman_morrison"));
    }

    #[test]
    fn cholesky_ols_tracks_reevaluation() {
        let n = 12;
        let x = well_conditioned_x(n, 21);
        let y = Matrix::random_uniform(n, 2, 22);
        let mut reeval = ReevalOls::new(x.clone(), y.clone()).unwrap();
        let mut chol = CholOls::new(x, y).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.001, 23);
        for _ in 0..15 {
            let upd = stream.next_rank_one();
            reeval.apply(&upd).unwrap();
            chol.apply(&upd).unwrap();
        }
        assert!(chol.beta().approx_eq(reeval.beta(), 1e-6));
    }

    #[test]
    fn cholesky_factor_stays_consistent_with_gram_matrix() {
        let n = 10;
        let x = well_conditioned_x(n, 25);
        let y = Matrix::random_col(n, 26);
        let mut chol = CholOls::new(x.clone(), y).unwrap();
        let mut x_ref = x;
        let mut stream = UpdateStream::new(n, n, 0.001, 27);
        for _ in 0..10 {
            let upd = stream.next_rank_one();
            chol.apply(&upd).unwrap();
            upd.apply_to(&mut x_ref).unwrap();
        }
        let z = x_ref.transpose().try_matmul(&x_ref).unwrap();
        assert!(chol.factor().reconstruct().approx_eq(&z, 1e-7));
    }

    #[test]
    fn cholesky_and_sherman_morrison_agree() {
        // The two §4.2 primitives maintain the same estimator.
        let n = 10;
        let x = well_conditioned_x(n, 31);
        let y = Matrix::random_col(n, 32);
        let mut sm = IncrOls::new(x.clone(), y.clone()).unwrap();
        let mut ch = CholOls::new(x, y).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.001, 33);
        for _ in 0..10 {
            let upd = stream.next_rank_one();
            sm.apply(&upd).unwrap();
            ch.apply(&upd).unwrap();
        }
        assert!(ch.beta().approx_eq(sm.beta(), 1e-7));
    }

    #[test]
    fn rank_destroying_update_fails_atomically() {
        // Make X rank deficient: X := X - X e0 e0ᵀ... a rank-1 update that
        // zeroes column 0 of X makes XᵀX singular; the downdate must fail
        // and leave beta unchanged.
        let n = 6;
        let x = well_conditioned_x(n, 41);
        let y = Matrix::random_col(n, 42);
        let mut ch = CholOls::new(x.clone(), y).unwrap();
        let before = ch.beta().clone();
        let mut e0 = Matrix::zeros(n, 1);
        e0.set(0, 0, 1.0);
        let upd = RankOneUpdate {
            u: x.col_matrix(0).scale(-1.0),
            v: e0,
        };
        assert!(ch.apply(&upd).is_err());
        assert!(ch.beta().approx_eq(&before, 1e-15));
    }

    #[test]
    fn multi_response_ols() {
        // p > 1 responses maintained simultaneously.
        let n = 10;
        let x = well_conditioned_x(n, 13);
        let y = Matrix::random_uniform(n, 4, 14);
        let mut reeval = ReevalOls::new(x.clone(), y.clone()).unwrap();
        let mut incr = IncrOls::new(x, y).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.001, 15);
        for _ in 0..6 {
            let upd = stream.next_rank_one();
            reeval.apply(&upd).unwrap();
            incr.apply(&upd).unwrap();
        }
        assert_eq!(incr.beta().shape(), (10, 4));
        assert!(incr.beta().approx_eq(reeval.beta(), 1e-6));
    }
}
