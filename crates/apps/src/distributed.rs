//! Distributed incremental view maintenance (§6): compiled triggers driving
//! grid-partitioned views on the simulated cluster.
//!
//! Since the `ExecBackend` refactor this module contains **no** trigger
//! execution logic of its own: [`DistIncrView`] is a thin wrapper over the
//! generic [`IncrementalView`] running on a
//! [`linview_runtime::DistBackend`], so the exact same
//! statement interpreter fires triggers locally and on the cluster. The
//! execution split still mirrors the paper's Spark backend — the
//! coordinator evaluates the `O(kn)`-sized delta blocks against a dense
//! mirror, workers receive broadcast factors and update their partitions
//! with no shuffle — and every byte moved is metered by the cluster's
//! [`CommStats`].
//!
//! [`CommStats`]: linview_dist::CommStats

use linview_dist::{Cluster, CommSnapshot, DistMatrix};
use linview_expr::Catalog;
use linview_matrix::Matrix;
use linview_runtime::{DistBackend, IncrementalView, RankOneUpdate};

use crate::Result;

/// An incrementally maintained set of views, partitioned across a simulated
/// cluster — [`IncrementalView`] on a [`DistBackend`], plus
/// construction-from-worker-count and gather conveniences.
#[derive(Debug)]
pub struct DistIncrView {
    inner: IncrementalView<DistBackend>,
}

impl DistIncrView {
    /// Compiles `program` for the given dynamic inputs, materializes every
    /// view, and partitions all of them over a cluster of `workers`
    /// (a perfect square; every matrix dimension must be divisible by the
    /// grid side `√workers`).
    pub fn build(
        program: &linview_compiler::Program,
        inputs: &[(&str, Matrix)],
        cat: &Catalog,
        workers: usize,
    ) -> Result<Self> {
        let backend = DistBackend::new(workers)?;
        Ok(DistIncrView {
            inner: IncrementalView::build_on(backend, program, inputs, cat)?,
        })
    }

    /// Fires the trigger for a rank-1 update to `input`: factors are
    /// evaluated centrally and broadcast; partitions update locally.
    pub fn apply(&mut self, input: &str, upd: &RankOneUpdate) -> Result<()> {
        self.inner.apply(input, upd)
    }

    /// Rank-k variant of [`DistIncrView::apply`].
    pub fn apply_factored(&mut self, input: &str, du: &Matrix, dv: &Matrix) -> Result<()> {
        self.inner.apply_factored(input, du, dv)
    }

    /// Gathers a partitioned view back to a dense matrix.
    pub fn view(&self, name: &str) -> Result<Matrix> {
        self.inner.backend().view(name)
    }

    /// The coordinator's dense mirror of a view (bit-identical to local
    /// execution of the same stream).
    pub fn mirror(&self, name: &str) -> Result<&Matrix> {
        self.inner.get(name)
    }

    /// The partitioned form of a view.
    pub fn dist_view(&self, name: &str) -> Option<&DistMatrix> {
        self.inner.backend().dist_view(name)
    }

    /// Cumulative communication since construction (or the last reset).
    pub fn comm(&self) -> CommSnapshot {
        self.inner.comm()
    }

    /// Resets the communication counters.
    pub fn reset_comm(&self) -> CommSnapshot {
        self.inner.reset_comm()
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        self.inner.backend().cluster()
    }

    /// The generic view this wrapper drives (trigger program, exec
    /// options, checkpointing).
    pub fn as_view(&self) -> &IncrementalView<DistBackend> {
        &self.inner
    }

    /// Mutable access to the generic view.
    pub fn as_view_mut(&mut self) -> &mut IncrementalView<DistBackend> {
        &mut self.inner
    }
}

impl From<DistIncrView> for IncrementalView<DistBackend> {
    fn from(v: DistIncrView) -> Self {
        v.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powers::IncrPowers;
    use crate::IterModel;
    use linview_compiler::parse::parse_program;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    fn powers_setup(n: usize) -> (linview_compiler::Program, Catalog, Matrix) {
        let program = parse_program("B := A * A; C := B * B;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        (program, cat, Matrix::random_spectral(n, 5, 0.8))
    }

    #[test]
    fn distributed_matches_single_node_incremental() {
        let n = 24;
        let (program, cat, a) = powers_setup(n);
        let mut dist = DistIncrView::build(&program, &[("A", a.clone())], &cat, 4).unwrap();
        let mut local = IncrPowers::new(a, IterModel::Exponential, 4).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 61);
        for _ in 0..8 {
            let upd = stream.next_rank_one();
            dist.apply("A", &upd).unwrap();
            local.apply(&upd).unwrap();
        }
        assert!(dist.view("C").unwrap().approx_eq(local.result(), 1e-9));
        // The coordinator mirror and the partitions agree too.
        assert!(dist
            .view("B")
            .unwrap()
            .approx_eq(dist.mirror("B").unwrap(), 1e-12));
    }

    #[test]
    fn updates_generate_only_broadcast_traffic() {
        let n = 24;
        let (program, cat, a) = powers_setup(n);
        let mut dist = DistIncrView::build(&program, &[("A", a)], &cat, 9).unwrap();
        dist.reset_comm();
        let upd = RankOneUpdate::row_update(n, n, 3, 0.01, 7);
        dist.apply("A", &upd).unwrap();
        let comm = dist.comm();
        assert_eq!(comm.shuffle_bytes, 0, "incremental path must not shuffle");
        assert!(comm.broadcast_bytes > 0);
    }

    #[test]
    fn sherman_morrison_views_work_distributed() {
        // OLS over the cluster: the inverse is maintained centrally via
        // S-M, the views (Z, W, beta) live partitioned.
        let n = 16;
        let program = parse_program("Z := X' * X; W := inv(Z); beta := W * X' * Y;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("X", n, n);
        cat.declare("Y", n, 4);
        let x = Matrix::random_diag_dominant(n, 3);
        let y = Matrix::random_uniform(n, 4, 4);
        let mut dist =
            DistIncrView::build(&program, &[("X", x.clone()), ("Y", y.clone())], &cat, 4).unwrap();
        let mut x_ref = x.clone();
        let mut stream = UpdateStream::new(n, n, 0.001, 67);
        for _ in 0..5 {
            let upd = stream.next_rank_one();
            dist.apply("X", &upd).unwrap();
            upd.apply_to(&mut x_ref).unwrap();
        }
        let z = x_ref.transpose().try_matmul(&x_ref).unwrap();
        let beta = z
            .inverse()
            .unwrap()
            .try_matmul(&x_ref.transpose().try_matmul(&y).unwrap())
            .unwrap();
        assert!(dist.view("beta").unwrap().approx_eq(&beta, 1e-6));
    }

    #[test]
    fn build_rejects_indivisible_dimensions() {
        let (program, cat, a) = powers_setup(10); // 10 not divisible by 3
        assert!(DistIncrView::build(&program, &[("A", a)], &cat, 9).is_err());
    }

    #[test]
    fn build_rejects_non_square_worker_counts() {
        let (program, cat, a) = powers_setup(16);
        assert!(DistIncrView::build(&program, &[("A", a)], &cat, 8).is_err());
    }

    #[test]
    fn unknown_input_is_an_error() {
        let (program, cat, a) = powers_setup(16);
        let mut dist = DistIncrView::build(&program, &[("A", a)], &cat, 4).unwrap();
        let upd = RankOneUpdate::row_update(16, 16, 0, 0.01, 1);
        assert!(dist.apply("Z", &upd).is_err());
        assert!(dist.view("nope").is_err());
    }

    #[test]
    fn shared_code_path_is_bit_identical_to_local_execution() {
        // The refactor's core guarantee: the coordinator mirror of the
        // distributed run equals the local run EXACTLY (same interpreter,
        // same delta arithmetic) — not merely to within a tolerance.
        let n = 24;
        let (program, cat, a) = powers_setup(n);
        let mut dist = DistIncrView::build(&program, &[("A", a.clone())], &cat, 4).unwrap();
        let mut local = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
        let mut s1 = UpdateStream::new(n, n, 0.01, 91);
        let mut s2 = UpdateStream::new(n, n, 0.01, 91);
        for _ in 0..6 {
            dist.apply("A", &s1.next_rank_one()).unwrap();
            local.apply("A", &s2.next_rank_one()).unwrap();
        }
        for view in ["A", "B", "C"] {
            assert_eq!(dist.mirror(view).unwrap(), local.get(view).unwrap());
        }
    }
}
