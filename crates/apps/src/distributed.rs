//! Distributed incremental view maintenance (§6): compiled triggers driving
//! grid-partitioned views on the simulated cluster.
//!
//! The execution split mirrors the paper's Spark backend:
//!
//! * the **coordinator** evaluates the trigger's delta-block assignments —
//!   these touch only `O(kn)`-sized factors and a local mirror of the
//!   views' dense values;
//! * each **worker** receives the broadcast factors and applies
//!   `block += U[rows] · V[cols]ᵀ` to its own partition, with no shuffle.
//!
//! Every byte moved is metered by the cluster's [`CommStats`], which is how
//! Fig. 3f's communication asymmetry is reproduced.
//!
//! [`CommStats`]: linview_dist::CommStats

use linview_compiler::{compile, CompileOptions, TriggerProgram, TriggerStmt};
use linview_dist::{dist_add_low_rank, Cluster, CommSnapshot, DistMatrix};
use linview_expr::Catalog;
use linview_matrix::Matrix;
use linview_runtime::{sherman_morrison, Env, Evaluator, RankOneUpdate, RuntimeError};
use std::collections::BTreeMap;

use crate::Result;

/// An incrementally maintained set of views, partitioned across a simulated
/// cluster.
#[derive(Debug)]
pub struct DistIncrView {
    cluster: Cluster,
    trigger_program: TriggerProgram,
    evaluator: Evaluator,
    /// Coordinator-side dense mirror (sources the factor evaluations).
    env: Env,
    /// Worker-side partitioned views.
    views: BTreeMap<String, DistMatrix>,
}

impl DistIncrView {
    /// Compiles `program` for the given dynamic inputs, materializes every
    /// view, and partitions all of them over a cluster of `workers`
    /// (a perfect square; every matrix dimension must be divisible by the
    /// grid side `√workers`).
    pub fn build(
        program: &linview_compiler::Program,
        inputs: &[(&str, Matrix)],
        cat: &Catalog,
        workers: usize,
    ) -> Result<Self> {
        let cluster = Cluster::try_new(workers).map_err(RuntimeError::Matrix)?;
        let grid = cluster.grid();
        let dynamic: Vec<&str> = inputs.iter().map(|(n, _)| *n).collect();
        let normalized = program.hoist_inverses(&dynamic);
        let tp = compile(&normalized, &dynamic, cat, &CompileOptions::default())?;

        let evaluator = Evaluator::new();
        let mut env = Env::new();
        for (name, m) in inputs {
            env.bind(*name, m.clone());
        }
        for stmt in normalized.statements() {
            let value = evaluator.eval(&stmt.expr, &env)?;
            env.bind(stmt.target.clone(), value);
        }
        // Partition every bound matrix (inputs and views alike).
        let mut views = BTreeMap::new();
        for (name, m) in env.iter() {
            let dm = DistMatrix::from_dense(m, grid).map_err(RuntimeError::Matrix)?;
            views.insert(name.to_string(), dm);
        }
        Ok(DistIncrView {
            cluster,
            trigger_program: tp,
            evaluator,
            env,
            views,
        })
    }

    /// Fires the trigger for a rank-1 update to `input`: factors are
    /// evaluated centrally and broadcast; partitions update locally.
    pub fn apply(&mut self, input: &str, upd: &RankOneUpdate) -> Result<()> {
        self.apply_factored(input, &upd.u, &upd.v)
    }

    /// Rank-k variant of [`DistIncrView::apply`].
    pub fn apply_factored(&mut self, input: &str, du: &Matrix, dv: &Matrix) -> Result<()> {
        let trigger = self
            .trigger_program
            .trigger_for(input)
            .ok_or_else(|| RuntimeError::Unbound(format!("trigger for '{input}'")))?
            .clone();
        let (du_name, dv_name) = linview_expr::delta::input_delta_names(input);
        self.env.bind(du_name.clone(), du.clone());
        self.env.bind(dv_name.clone(), dv.clone());
        let mut temporaries = vec![du_name, dv_name];

        let result = (|| -> Result<()> {
            for stmt in &trigger.stmts {
                match stmt {
                    TriggerStmt::Assign { var, expr } => {
                        let value = self.evaluator.eval(expr, &self.env)?;
                        self.env.bind(var.clone(), value);
                        temporaries.push(var.clone());
                    }
                    TriggerStmt::ShermanMorrison {
                        inv_var,
                        p,
                        q,
                        out_u,
                        out_v,
                    } => {
                        let pm = self.evaluator.eval(p, &self.env)?;
                        let qm = self.evaluator.eval(q, &self.env)?;
                        let w = self.env.get(inv_var)?;
                        let (u, v) = sherman_morrison(w, &pm, &qm)?;
                        self.env.bind(out_u.clone(), u);
                        self.env.bind(out_v.clone(), v);
                        temporaries.push(out_u.clone());
                        temporaries.push(out_v.clone());
                    }
                    TriggerStmt::ApplyDelta { target, u, v } => {
                        let um = self.evaluator.eval(u, &self.env)?;
                        let vm = self.evaluator.eval(v, &self.env)?;
                        // Broadcast + block-local worker updates.
                        let dm = self
                            .views
                            .get_mut(target)
                            .ok_or_else(|| RuntimeError::Unbound(target.clone()))?;
                        dist_add_low_rank(dm, &um, &vm, &self.cluster)
                            .map_err(RuntimeError::Matrix)?;
                        // Keep the coordinator mirror in sync.
                        let delta = um.try_matmul(&vm.transpose())?;
                        self.env.get_mut(target)?.add_assign_from(&delta)?;
                    }
                }
            }
            Ok(())
        })();
        for t in &temporaries {
            self.env.unbind(t);
        }
        result
    }

    /// Gathers a partitioned view back to a dense matrix.
    pub fn view(&self, name: &str) -> Result<Matrix> {
        self.views
            .get(name)
            .map(DistMatrix::to_dense)
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    /// The partitioned form of a view.
    pub fn dist_view(&self, name: &str) -> Option<&DistMatrix> {
        self.views.get(name)
    }

    /// Cumulative communication since construction (or the last reset).
    pub fn comm(&self) -> CommSnapshot {
        self.cluster.comm().snapshot()
    }

    /// Resets the communication counters.
    pub fn reset_comm(&self) -> CommSnapshot {
        self.cluster.comm().reset()
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powers::IncrPowers;
    use crate::IterModel;
    use linview_compiler::parse::parse_program;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    fn powers_setup(n: usize) -> (linview_compiler::Program, Catalog, Matrix) {
        let program = parse_program("B := A * A; C := B * B;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("A", n, n);
        (program, cat, Matrix::random_spectral(n, 5, 0.8))
    }

    #[test]
    fn distributed_matches_single_node_incremental() {
        let n = 24;
        let (program, cat, a) = powers_setup(n);
        let mut dist = DistIncrView::build(&program, &[("A", a.clone())], &cat, 4).unwrap();
        let mut local = IncrPowers::new(a, IterModel::Exponential, 4).unwrap();
        let mut stream = UpdateStream::new(n, n, 0.01, 61);
        for _ in 0..8 {
            let upd = stream.next_rank_one();
            dist.apply("A", &upd).unwrap();
            local.apply(&upd).unwrap();
        }
        assert!(dist.view("C").unwrap().approx_eq(local.result(), 1e-9));
        // The coordinator mirror and the partitions agree too.
        assert!(dist
            .view("B")
            .unwrap()
            .approx_eq(dist.env.get("B").unwrap(), 1e-12));
    }

    #[test]
    fn updates_generate_only_broadcast_traffic() {
        let n = 24;
        let (program, cat, a) = powers_setup(n);
        let mut dist = DistIncrView::build(&program, &[("A", a)], &cat, 9).unwrap();
        dist.reset_comm();
        let upd = RankOneUpdate::row_update(n, n, 3, 0.01, 7);
        dist.apply("A", &upd).unwrap();
        let comm = dist.comm();
        assert_eq!(comm.shuffle_bytes, 0, "incremental path must not shuffle");
        assert!(comm.broadcast_bytes > 0);
    }

    #[test]
    fn sherman_morrison_views_work_distributed() {
        // OLS over the cluster: the inverse is maintained centrally via
        // S-M, the views (Z, W, beta) live partitioned.
        let n = 16;
        let program = parse_program("Z := X' * X; W := inv(Z); beta := W * X' * Y;").unwrap();
        let mut cat = Catalog::new();
        cat.declare("X", n, n);
        cat.declare("Y", n, 4);
        let x = Matrix::random_diag_dominant(n, 3);
        let y = Matrix::random_uniform(n, 4, 4);
        let mut dist =
            DistIncrView::build(&program, &[("X", x.clone()), ("Y", y.clone())], &cat, 4).unwrap();
        let mut x_ref = x.clone();
        let mut stream = UpdateStream::new(n, n, 0.001, 67);
        for _ in 0..5 {
            let upd = stream.next_rank_one();
            dist.apply("X", &upd).unwrap();
            upd.apply_to(&mut x_ref).unwrap();
        }
        let z = x_ref.transpose().try_matmul(&x_ref).unwrap();
        let beta = z
            .inverse()
            .unwrap()
            .try_matmul(&x_ref.transpose().try_matmul(&y).unwrap())
            .unwrap();
        assert!(dist.view("beta").unwrap().approx_eq(&beta, 1e-6));
    }

    #[test]
    fn build_rejects_indivisible_dimensions() {
        let (program, cat, a) = powers_setup(10); // 10 not divisible by 3
        assert!(DistIncrView::build(&program, &[("A", a)], &cat, 9).is_err());
    }

    #[test]
    fn build_rejects_non_square_worker_counts() {
        let (program, cat, a) = powers_setup(16);
        assert!(DistIncrView::build(&program, &[("A", a)], &cat, 8).is_err());
    }

    #[test]
    fn unknown_input_is_an_error() {
        let (program, cat, a) = powers_setup(16);
        let mut dist = DistIncrView::build(&program, &[("A", a)], &cat, 4).unwrap();
        let upd = RankOneUpdate::row_update(16, 16, 0, 0.01, 1);
        assert!(dist.apply("Z", &upd).is_err());
        assert!(dist.view("nope").is_err());
    }
}
