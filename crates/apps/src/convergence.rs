//! Convergence-threshold iterations under incremental maintenance — the
//! extension §3.1 leaves as future work.
//!
//! The paper fixes the number of iteration steps because "programs using
//! convergence thresholds might yield a varying number of iteration steps
//! after each update. Having different numbers of outcomes per update would
//! require incremental maintenance to deal with outdated or missing old
//! results". Footnote 3 sketches the resolution: "If the solution does not
//! converge after a given number of iterations, we can always re-evaluate
//! additional steps."
//!
//! [`ConvergentIteration`] implements exactly that protocol for the linear
//! model of `Tᵢ₊₁ = A·Tᵢ + B`:
//!
//! 1. Propagate factored deltas `ΔTᵢ = Uᵢ·Vᵢᵀ` through every *materialized*
//!    iteration (the Appendix B linear recurrence) — `O((n² + np)·k²)` just
//!    as Table 2 states, independent of the convergence behaviour.
//! 2. Re-derive the residual chain `‖Tᵢ − Tᵢ₋₁‖` from the updated views
//!    (`O(npk)`, asymptotically free).
//! 3. If the update made the iteration converge *earlier*, drop the now
//!    "outdated old results" past the new fixpoint; if it *broke*
//!    convergence at the old horizon, evaluate additional plain steps until
//!    the threshold is met again (footnote 3), materializing them so the
//!    next update can maintain them incrementally too.

use linview_matrix::Matrix;
use linview_runtime::{RankOneUpdate, RuntimeError};

use crate::Result;

/// An incrementally maintained fixed-point iteration
/// `Tᵢ₊₁ = A·Tᵢ + B`, iterated until `‖Tᵢ − Tᵢ₋₁‖_F < eps`.
#[derive(Debug, Clone)]
pub struct ConvergentIteration {
    a: Matrix,
    b: Matrix,
    t0: Matrix,
    eps: f64,
    max_iterations: usize,
    /// Materialized iterates `T₁ … T_k` (index 0 holds `T₁`).
    t: Vec<Matrix>,
    /// Extra steps evaluated by the footnote-3 path on the last update.
    last_extension: usize,
    /// Iterations dropped as outdated on the last update.
    last_truncation: usize,
}

impl ConvergentIteration {
    /// Builds the view: iterates from `t0` until the Frobenius residual
    /// drops below `eps`, materializing every step.
    ///
    /// Returns [`RuntimeError::DidNotConverge`] when `max_iterations` is
    /// exhausted first (e.g. spectral radius of `A` ≥ 1).
    pub fn new(a: Matrix, b: Matrix, t0: Matrix, eps: f64, max_iterations: usize) -> Result<Self> {
        assert!(eps > 0.0, "threshold must be positive");
        let mut it = ConvergentIteration {
            a,
            b,
            t0,
            eps,
            max_iterations,
            t: Vec::new(),
            last_extension: 0,
            last_truncation: 0,
        };
        let mut prev = it.t0.clone();
        loop {
            if it.t.len() >= it.max_iterations {
                return Err(RuntimeError::DidNotConverge {
                    iterations: it.t.len(),
                    residual: it.residual_at(it.t.len()),
                });
            }
            let next = it.step(&prev)?;
            let residual = next.try_sub(&prev)?.frobenius_norm();
            it.t.push(next.clone());
            if residual < it.eps {
                return Ok(it);
            }
            prev = next;
        }
    }

    fn step(&self, prev: &Matrix) -> Result<Matrix> {
        Ok(self.a.try_matmul(prev)?.try_add(&self.b)?)
    }

    /// The converged result `T_k` (the last materialized iterate).
    pub fn result(&self) -> &Matrix {
        self.t.last().expect("at least one iteration")
    }

    /// Number of iterations currently materialized (the adaptive `k`).
    pub fn iterations(&self) -> usize {
        self.t.len()
    }

    /// Extra footnote-3 steps evaluated by the most recent update.
    pub fn last_extension(&self) -> usize {
        self.last_extension
    }

    /// Outdated iterations dropped by the most recent update.
    pub fn last_truncation(&self) -> usize {
        self.last_truncation
    }

    /// Residual `‖Tᵢ − Tᵢ₋₁‖_F` for `i` in `1..=k` (`T₀` is the start).
    fn residual_at(&self, i: usize) -> f64 {
        debug_assert!(i >= 1 && i <= self.t.len());
        let prev = if i == 1 { &self.t0 } else { &self.t[i - 2] };
        self.t[i - 1]
            .try_sub(prev)
            .expect("same shape")
            .frobenius_norm()
    }

    /// Applies a rank-1 update to `A`, maintaining the materialized
    /// iterates incrementally and re-establishing the convergence
    /// condition (extending or truncating the iteration history).
    pub fn apply(&mut self, upd: &RankOneUpdate) -> Result<()> {
        self.last_extension = 0;
        self.last_truncation = 0;
        let k = self.t.len();

        // Phase 1: factored deltas via the linear-model recurrence
        // (Appendix B): ΔT₁ = ΔA·T₀;
        // ΔTᵢ = [u | A·Uᵢ₋₁ + u·(vᵀUᵢ₋₁)] [Tᵢ₋₁ᵀv | Vᵢ₋₁]ᵀ.
        let mut deltas: Vec<(Matrix, Matrix)> = Vec::with_capacity(k);
        let u1 = upd.u.clone();
        let v1 = self.t0.transpose().try_matmul(&upd.v)?;
        deltas.push((u1, v1));
        for i in 1..k {
            let (prev_u, prev_v) = &deltas[i - 1];
            let mid = self
                .a
                .try_matmul(prev_u)?
                .try_add(&upd.u.try_matmul(&upd.v.transpose().try_matmul(prev_u)?)?)?;
            let new_u = Matrix::hstack(&[&upd.u, &mid])?;
            let new_v = Matrix::hstack(&[&self.t[i - 1].transpose().try_matmul(&upd.v)?, prev_v])?;
            deltas.push((new_u, new_v));
        }

        // Phase 2: fold the deltas into the views, then update A.
        for (i, (du, dv)) in deltas.iter().enumerate() {
            let dense = du.try_matmul(&dv.transpose())?;
            self.t[i].add_assign_from(&dense)?;
        }
        upd.apply_to(&mut self.a)?;

        // Phase 3: re-establish the threshold condition.
        // Earlier convergence: drop outdated tail results.
        if let Some(first) = (1..=k).find(|&i| self.residual_at(i) < self.eps) {
            self.last_truncation = k - first;
            self.t.truncate(first);
            return Ok(());
        }
        // Broken convergence: evaluate additional steps (footnote 3).
        let mut prev = self.result().clone();
        loop {
            if self.t.len() >= self.max_iterations {
                return Err(RuntimeError::DidNotConverge {
                    iterations: self.t.len(),
                    residual: self.residual_at(self.t.len()),
                });
            }
            let next = self.step(&prev)?;
            let residual = next.try_sub(&prev)?.frobenius_norm();
            self.t.push(next.clone());
            self.last_extension += 1;
            if residual < self.eps {
                return Ok(());
            }
            prev = next;
        }
    }

    /// Current `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Bytes held by all persistent state.
    pub fn memory_bytes(&self) -> usize {
        self.a.memory_bytes()
            + self.b.memory_bytes()
            + self.t0.memory_bytes()
            + self.t.iter().map(Matrix::memory_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;
    use linview_runtime::UpdateStream;

    /// Fresh convergent run for cross-validation.
    fn reference(a: &Matrix, b: &Matrix, t0: &Matrix, eps: f64) -> (Matrix, usize) {
        let mut prev = t0.clone();
        let mut iters = 0;
        loop {
            let next = a.try_matmul(&prev).unwrap().try_add(b).unwrap();
            iters += 1;
            let r = next.try_sub(&prev).unwrap().frobenius_norm();
            if r < eps {
                return (next, iters);
            }
            prev = next;
            assert!(iters < 10_000, "reference did not converge");
        }
    }

    fn setup(n: usize, p: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Matrix::random_spectral(n, seed, 0.6),
            Matrix::random_uniform(n, p, seed + 1),
            Matrix::random_uniform(n, p, seed + 2),
        )
    }

    #[test]
    fn initial_run_matches_reference() {
        let (a, b, t0) = setup(12, 2, 1);
        let eps = 1e-8;
        let it = ConvergentIteration::new(a.clone(), b.clone(), t0.clone(), eps, 500).unwrap();
        let (expected, k) = reference(&a, &b, &t0, eps);
        assert_eq!(it.iterations(), k);
        assert!(it.result().approx_eq(&expected, 1e-10));
    }

    #[test]
    fn updates_track_fresh_convergent_runs() {
        let n = 12;
        let (a, b, t0) = setup(n, 2, 3);
        let eps = 1e-8;
        let mut it = ConvergentIteration::new(a.clone(), b.clone(), t0.clone(), eps, 500).unwrap();
        let mut a_ref = a;
        let mut stream = UpdateStream::new(n, n, 0.02, 5);
        for _ in 0..8 {
            let upd = stream.next_rank_one();
            it.apply(&upd).unwrap();
            upd.apply_to(&mut a_ref).unwrap();
            let (expected, k) = reference(&a_ref, &b, &t0, eps);
            assert_eq!(it.iterations(), k, "iteration count diverged");
            assert!(it.result().approx_eq(&expected, 1e-7));
        }
    }

    #[test]
    fn growing_spectral_radius_extends_the_iteration() {
        // Slow the contraction down: convergence needs more steps, so the
        // footnote-3 path must extend the history.
        let n = 10;
        let (a, b, t0) = setup(n, 1, 7);
        let eps = 1e-6;
        let mut it = ConvergentIteration::new(a.clone(), b, t0, eps, 2000).unwrap();
        let k_before = it.iterations();
        // Add 0.2·I as n rank-1 updates' worth in one go: a single rank-1
        // that boosts one direction strongly.
        let upd = RankOneUpdate {
            u: Matrix::random_col(n, 8).scale(0.3),
            v: Matrix::random_col(n, 9),
        };
        it.apply(&upd).unwrap();
        assert!(
            it.last_extension() > 0 || it.last_truncation() > 0 || it.iterations() == k_before,
            "update must adjust or preserve the horizon"
        );
    }

    #[test]
    fn shrinking_a_truncates_outdated_results() {
        // Scale A down via a sequence of updates that damp the iteration:
        // convergence arrives earlier and the tail must be dropped.
        let n = 8;
        let a = Matrix::random_spectral(n, 11, 0.9);
        let b = Matrix::random_uniform(n, 1, 12);
        let t0 = Matrix::random_uniform(n, 1, 13);
        let eps = 1e-6;
        let mut it = ConvergentIteration::new(a.clone(), b.clone(), t0.clone(), eps, 5000).unwrap();
        let k_before = it.iterations();
        // Rank-1 update that cancels a chunk of A: ΔA = −0.5·a₀·e₀ᵀ where a₀
        // is column 0 of A (halves that column).
        let col0 = a.col_matrix(0);
        let mut e0 = Matrix::zeros(n, 1);
        e0.set(0, 0, 1.0);
        let upd = RankOneUpdate {
            u: col0.scale(-0.5),
            v: e0,
        };
        it.apply(&upd).unwrap();
        let mut a_ref = a;
        upd.apply_to(&mut a_ref).unwrap();
        let (expected, k_ref) = reference(&a_ref, &b, &t0, eps);
        assert_eq!(it.iterations(), k_ref);
        assert!(it.result().approx_eq(&expected, 1e-8));
        // At least sometimes this shrinks the horizon; assert consistency
        // either way and record which path fired.
        if k_ref < k_before {
            assert_eq!(it.last_truncation(), k_before - k_ref);
        }
    }

    #[test]
    fn divergent_input_reports_did_not_converge() {
        let n = 6;
        // Spectral radius > 1: the fixed point iteration diverges.
        let a = Matrix::identity(n).scale(1.5);
        let b = Matrix::ones(n, 1);
        let t0 = Matrix::ones(n, 1);
        let err = ConvergentIteration::new(a, b, t0, 1e-9, 50).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::DidNotConverge { iterations: 50, .. }
        ));
    }

    #[test]
    fn update_that_breaks_convergence_errors_out() {
        let n = 6;
        let (a, b, t0) = setup(n, 1, 17);
        let mut it = ConvergentIteration::new(a, b, t0, 1e-8, 60).unwrap();
        // Blow A up past spectral radius 1.
        let upd = RankOneUpdate {
            u: Matrix::random_col(n, 18).scale(5.0),
            v: Matrix::random_col(n, 19),
        };
        assert!(matches!(
            it.apply(&upd),
            Err(RuntimeError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn pagerank_style_iteration_converges_and_tracks() {
        // d·Mᵀ with damping 0.85 contracts: the classic PageRank setting.
        let n = 16;
        let m = Matrix::random_stochastic(n, 21);
        let a = m.transpose().scale(0.85);
        let b = Matrix::filled(n, 1, 0.15 / n as f64);
        let t0 = Matrix::filled(n, 1, 1.0 / n as f64);
        let eps = 1e-10;
        let mut it = ConvergentIteration::new(a.clone(), b.clone(), t0.clone(), eps, 1000).unwrap();
        // Small perturbation of the link structure.
        let upd = RankOneUpdate::row_update(n, n, 3, 0.01, 22);
        it.apply(&upd).unwrap();
        let mut a_ref = a;
        upd.apply_to(&mut a_ref).unwrap();
        let (expected, k) = reference(&a_ref, &b, &t0, eps);
        assert_eq!(it.iterations(), k);
        assert!(it.result().approx_eq(&expected, 1e-9));
    }

    #[test]
    fn memory_grows_with_materialized_horizon() {
        let (a, b, t0) = setup(10, 1, 23);
        let tight =
            ConvergentIteration::new(a.clone(), b.clone(), t0.clone(), 1e-12, 5000).unwrap();
        let loose = ConvergentIteration::new(a, b, t0, 1e-2, 5000).unwrap();
        assert!(tight.iterations() > loose.iterations());
        assert!(tight.memory_bytes() > loose.memory_bytes());
    }
}
