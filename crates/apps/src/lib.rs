//! # linview-apps
//!
//! The paper's analytical workloads (§5, §7), each maintainable under the
//! evaluation strategies the paper compares:
//!
//! | Module | Paper section | Views maintained |
//! |---|---|---|
//! | [`models`] | §3.2 | the Linear / Exponential / Skip-s iterative models |
//! | [`powers`] | §5.2 | `Aᵏ` |
//! | [`sums`] | §5.2.3 | `I + A + … + Aᵏ⁻¹` |
//! | [`general`] | §5.3, App. B | `Tᵢ₊₁ = A Tᵢ + B` (REEVAL / INCR / HYBRID) |
//! | [`ols`] | §5.1 | `β* = (XᵀX)⁻¹XᵀY` with Sherman–Morrison |
//! | [`gd`] | §7 "General Form" | gradient-descent linear regression |
//! | [`pagerank`] | §5.2/§7 | PageRank power iteration over a link matrix |
//! | [`convergence`] | §3.1 (future work) | threshold-terminated iteration with adaptive horizon |
//! | [`expm`] | §5.2 (ODE motivation) | truncated-Taylor matrix exponential |
//!
//! Powers/sums incremental maintenance goes through the *compiler* (the
//! generated program is compiled by Algorithm 1 and executed by
//! `linview-runtime`), while the general form implements the hand-derived
//! recurrences of Appendix A/B numerically — the test suites cross-validate
//! the two paths against full re-evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod distributed;
pub mod expm;
pub mod gd;
pub mod general;
pub mod models;
pub mod ols;
pub mod pagerank;
pub mod powers;
pub mod reach;
pub mod sums;

pub use models::IterModel;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, linview_runtime::RuntimeError>;
