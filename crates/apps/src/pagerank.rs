//! PageRank by power iteration (§5.2/§5.3): `rᵢ₊₁ = d·M·rᵢ + (1−d)/n·𝟙`,
//! the `p = 1` instance of the general form where the paper's hybrid
//! strategy shines.
//!
//! The link structure is kept as an adjacency set; `M` is the
//! column-stochastic transition matrix (dangling nodes teleport uniformly).
//! Adding or removing an edge rescales one column of `M` — a rank-1 update
//! `ΔA = d·Δcol·e_srcᵀ` fed to the [`GeneralForm`] maintainer.

use linview_matrix::Matrix;
use linview_runtime::{Env, SnapshotPublisher, ViewHandle};
use std::collections::BTreeSet;

use crate::general::{GeneralForm, Strategy};
use crate::{IterModel, Result};

/// An incrementally maintained PageRank vector.
#[derive(Debug, Clone)]
pub struct PageRank {
    n: usize,
    damping: f64,
    adj: Vec<BTreeSet<usize>>,
    gf: GeneralForm,
    /// Wait-free snapshot publication of the rank vector; `None` until
    /// [`PageRank::enable_serving`]. PageRank wraps a [`GeneralForm`]
    /// rather than an `IncrementalView`, so it drives its own publisher:
    /// each effective edge mutation is one round.
    serving: Option<SnapshotPublisher>,
}

impl PageRank {
    /// Builds the maintainer from an edge list over `n` nodes, running `k`
    /// power-iteration steps with damping factor `damping` (0.85 in the
    /// classic setting).
    pub fn new(
        n: usize,
        edges: &[(usize, usize)],
        damping: f64,
        k: usize,
        model: IterModel,
        strategy: Strategy,
    ) -> Result<Self> {
        assert!(n > 0, "empty graph");
        assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
        let mut adj = vec![BTreeSet::new(); n];
        for &(src, dst) in edges {
            assert!(src < n && dst < n, "edge ({src},{dst}) out of range");
            adj[src].insert(dst);
        }
        let m = transition_matrix(&adj, n);
        let a = m.scale(damping);
        let b = Matrix::filled(n, 1, (1.0 - damping) / n as f64);
        let r0 = Matrix::filled(n, 1, 1.0 / n as f64);
        let gf = GeneralForm::new(a, b, r0, model, k, strategy)?;
        Ok(PageRank {
            n,
            damping,
            adj,
            gf,
            serving: None,
        })
    }

    /// Turns on the wait-free snapshot read path: publishes the current
    /// rank vector as the view `"ranks"` immediately, then republishes
    /// every `publish_every` effective edge mutations (`0` behaves like
    /// `1`). See [`linview_runtime::snapshot`]. Returns a cloneable
    /// reader handle.
    pub fn enable_serving(&mut self, publish_every: u64) -> ViewHandle {
        let publisher = SnapshotPublisher::new(publish_every);
        publisher.publish(&self.serving_env());
        let handle = publisher.handle();
        self.serving = Some(publisher);
        handle
    }

    /// A reader handle onto the published snapshots, when serving is on.
    pub fn serving_handle(&self) -> Option<ViewHandle> {
        self.serving.as_ref().map(SnapshotPublisher::handle)
    }

    /// The environment snapshots are captured from: just the rank vector.
    fn serving_env(&self) -> Env {
        let mut env = Env::new();
        env.bind("ranks", self.gf.result().clone());
        env
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The current rank vector (`n×1`, sums to ≈ 1 as `k → ∞`).
    pub fn ranks(&self) -> &Matrix {
        self.gf.result()
    }

    /// Adds an edge; no-op if already present. One rank-1 update.
    pub fn add_edge(&mut self, src: usize, dst: usize) -> Result<()> {
        assert!(src < self.n && dst < self.n, "edge out of range");
        if self.adj[src].contains(&dst) {
            return Ok(());
        }
        let old_col = self.column(src);
        self.adj[src].insert(dst);
        self.update_column(src, &old_col)
    }

    /// Removes an edge; no-op if absent. One rank-1 update.
    pub fn remove_edge(&mut self, src: usize, dst: usize) -> Result<()> {
        assert!(src < self.n && dst < self.n, "edge out of range");
        if !self.adj[src].contains(&dst) {
            return Ok(());
        }
        let old_col = self.column(src);
        self.adj[src].remove(&dst);
        self.update_column(src, &old_col)
    }

    /// Out-degree of `src`.
    pub fn out_degree(&self, src: usize) -> usize {
        self.adj[src].len()
    }

    /// The transition-matrix column for node `src` under the current
    /// adjacency (uniform teleport for dangling nodes).
    fn column(&self, src: usize) -> Matrix {
        let mut col = Matrix::zeros(self.n, 1);
        let deg = self.adj[src].len();
        if deg == 0 {
            for r in 0..self.n {
                col.set(r, 0, 1.0 / self.n as f64);
            }
        } else {
            for &dst in &self.adj[src] {
                col.set(dst, 0, 1.0 / deg as f64);
            }
        }
        col
    }

    /// Feeds `ΔA = d·(new_col − old_col)·e_srcᵀ` to the maintainer.
    fn update_column(&mut self, src: usize, old_col: &Matrix) -> Result<()> {
        let new_col = self.column(src);
        let delta = new_col.try_sub(old_col)?.scale(self.damping);
        let mut e_src = Matrix::zeros(self.n, 1);
        e_src.set(src, 0, 1.0);
        self.gf.apply_factored(&delta, &e_src, None)?;
        if let Some(srv) = &self.serving {
            srv.round_completed(&self.serving_env(), false);
        }
        Ok(())
    }
}

/// Dense column-stochastic transition matrix from adjacency sets.
fn transition_matrix(adj: &[BTreeSet<usize>], n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for (src, outs) in adj.iter().enumerate() {
        if outs.is_empty() {
            for r in 0..n {
                m.set(r, src, 1.0 / n as f64);
            }
        } else {
            for &dst in outs {
                m.set(dst, src, 1.0 / outs.len() as f64);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use linview_matrix::ApproxEq;

    fn brute_pagerank(n: usize, adj: &[BTreeSet<usize>], damping: f64, k: usize) -> Matrix {
        let m = transition_matrix(adj, n);
        let mut r = Matrix::filled(n, 1, 1.0 / n as f64);
        let teleport = Matrix::filled(n, 1, (1.0 - damping) / n as f64);
        for _ in 0..k {
            r = m
                .try_matmul(&r)
                .unwrap()
                .scale(damping)
                .try_add(&teleport)
                .unwrap();
        }
        r
    }

    fn ring_edges(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn uniform_ring_has_uniform_ranks() {
        let n = 8;
        let pr = PageRank::new(
            n,
            &ring_edges(n),
            0.85,
            16,
            IterModel::Linear,
            Strategy::Incremental,
        )
        .unwrap();
        let uniform = Matrix::filled(n, 1, 1.0 / n as f64);
        assert!(pr.ranks().approx_eq(&uniform, 1e-9));
    }

    #[test]
    fn hub_attracts_rank() {
        // Everyone links to node 0.
        let n = 10;
        let edges: Vec<_> = (1..n).map(|i| (i, 0)).collect();
        let pr = PageRank::new(
            n,
            &edges,
            0.85,
            32,
            IterModel::Linear,
            Strategy::Incremental,
        )
        .unwrap();
        let ranks = pr.ranks();
        for i in 1..n {
            assert!(ranks.get(0, 0) > ranks.get(i, 0));
        }
    }

    #[test]
    fn edge_updates_track_recomputation_for_all_strategies() {
        let n = 12;
        let k = 16;
        let damping = 0.85;
        for strategy in [Strategy::Reeval, Strategy::Incremental, Strategy::Hybrid] {
            let mut pr =
                PageRank::new(n, &ring_edges(n), damping, k, IterModel::Linear, strategy).unwrap();
            pr.add_edge(0, 5).unwrap();
            pr.add_edge(3, 7).unwrap();
            pr.remove_edge(1, 2).unwrap();
            pr.add_edge(1, 6).unwrap();
            // Reference adjacency.
            let mut adj = vec![BTreeSet::new(); n];
            for (s, d) in ring_edges(n) {
                adj[s].insert(d);
            }
            adj[0].insert(5);
            adj[3].insert(7);
            adj[1].remove(&2);
            adj[1].insert(6);
            let expected = brute_pagerank(n, &adj, damping, k);
            assert!(
                pr.ranks().approx_eq(&expected, 1e-8),
                "{} diverged",
                strategy.label()
            );
        }
    }

    #[test]
    fn dangling_node_teleports() {
        // Node 1 has no out-links: its column is uniform.
        let n = 4;
        let pr = PageRank::new(
            n,
            &[(0, 1)],
            0.85,
            8,
            IterModel::Linear,
            Strategy::Incremental,
        )
        .unwrap();
        assert_eq!(pr.out_degree(1), 0);
        let total: f64 = (0..n).map(|i| pr.ranks().get(i, 0)).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_edge_operations_are_noops() {
        let n = 6;
        let mut pr = PageRank::new(
            n,
            &ring_edges(n),
            0.85,
            8,
            IterModel::Linear,
            Strategy::Incremental,
        )
        .unwrap();
        let before = pr.ranks().clone();
        pr.add_edge(0, 1).unwrap(); // already present
        pr.remove_edge(2, 5).unwrap(); // absent
        assert!(pr.ranks().approx_eq(&before, 1e-12));
    }

    #[test]
    fn removing_last_out_edge_creates_dangling_column() {
        let n = 5;
        let mut pr = PageRank::new(
            n,
            &[(0, 1), (1, 2)],
            0.85,
            16,
            IterModel::Linear,
            Strategy::Hybrid,
        )
        .unwrap();
        pr.remove_edge(0, 1).unwrap();
        let mut adj = vec![BTreeSet::new(); n];
        adj[1].insert(2);
        let expected = brute_pagerank(n, &adj, 0.85, 16);
        assert!(pr.ranks().approx_eq(&expected, 1e-8));
    }
}
