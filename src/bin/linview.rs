//! The LINVIEW command-line compiler.
//!
//! Mirrors the paper's Fig. 2 workflow: APL-style program in, incremental
//! trigger program out, with a choice of backends. The `engine` subcommand
//! additionally *runs* a streaming maintenance workload through the
//! pluggable execution backends.
//!
//! ```text
//! linview --dims A=64x64 --program "B := A * A; C := B * B;"
//! linview --dims X=100x10,Y=100x1 --inputs X \
//!         --program "Z := X' * X; W := inv(Z); beta := W * X' * Y;" \
//!         --emit octave
//! linview --dims A=64x64 --file prog.lv --emit plan --rank 4 --no-factor
//! linview engine --n 48 --events 64 --batch 8 --zipf 1.5 --backend all
//! ```

use linview::compiler::codegen::{numpy, octave, plan, spark};
use linview::compiler::optimizer::{optimize, OptimizerOptions};
use linview::compiler::parse::parse_program;
use linview::compiler::{
    analyze, analyze_program, compile, compile_joint, AnalyzeOptions, CompileOptions,
};
use linview::dist::{PeerAddr, ServeOptions, SocketConfig, WorkerServer};
use linview::expr::cost::CostModel;
use linview::expr::{Catalog, DeltaOptions};
use linview::matrix::{gemm_threads, set_default_kernel, set_gemm_threads, GemmKernel, Matrix};
use linview::runtime::{
    DistBackend, ExecBackend, FlushPolicy, IncrementalView, MaintenanceEngine, SocketBackend,
    ThreadedBackend, UpdateStream,
};
use std::process::ExitCode;

const USAGE: &str = "\
linview — incremental view maintenance compiler for linear algebra programs

USAGE:
  linview --dims NAME=RxC[,NAME=RxC...] [OPTIONS] (--program SRC | --file PATH)
  linview lint (--dims LIST (--program SRC | --file PATH) | --app NAME)
               [LINT OPTIONS]
  linview engine [ENGINE OPTIONS]
  linview serve [SERVE OPTIONS]
  linview worker --listen ADDR [--once]
  linview serve-cluster [--workers W] [--dir DIR]

OPTIONS:
  --dims LIST        base matrix shapes, e.g. A=64x64,Y=64x1   (required)
  --program SRC      program text, e.g. \"B := A * A; C := B * B;\"
  --file PATH        read the program from a file
  --inputs LIST      dynamic inputs (default: every matrix in --dims)
  --emit KIND        trigger | octave | spark | numpy | plan | dag | analysis
                     | all (default: trigger; 'dag' prints each trigger's
                     staged execution plan, 'analysis' the static analyzer's
                     report: effect sets, verified stages, cost estimates)
  --rank K           update rank of the incoming deltas (default: 1)
  --analyze          print the predicted REEVAL-vs-INCR report (§5 as an API)
  --joint            emit ONE trigger for simultaneous updates to all
                     --inputs (§4.4 / Example 4.5) instead of one per input
  --no-factor        disable §4.3 common-factor extraction (ablation)
  --no-optimize      skip CSE / copy propagation / dead-code elimination
  --gamma G          matmul exponent for the plan's cost model (default: 3.0)
  --density D        expected nonzero fraction of incoming delta factors
                     (0 < D <= 1): refines --emit analysis with nnz-aware
                     fold FLOPs and compressed-frame wire bytes
  --gemm KERNEL      dense GEMM kernel: naive | blocked | packed |
                     packed-fma | strassen (default: packed; also settable
                     via LINVIEW_GEMM; packed-fma fuses multiply-adds —
                     fastest and differential-tested to 1e-10, but not
                     bit-identical to the exact kernels)
  --threads N        GEMM thread budget (default: all cores; also settable
                     via LINVIEW_THREADS — results are bit-identical for
                     every value)

LINT OPTIONS (run the static trigger-program analyzer, deny on errors):
  --app NAME         lint a shipped app program instead of --program/--file:
                     powers | sums | ols | reach | pagerank-step | all
  --n N              square dimension for --app programs (default: 16)
  --rank K           update rank of the incoming deltas (default: 1)
  --gamma G          matmul exponent for the cost pass (default: 3.0)
  --deny-warnings    exit nonzero on warnings too, not just errors

ENGINE OPTIONS (stream a Zipf-skewed multi-input workload):
  --n N              square input dimension (default: 48)
  --events E         rank-1 events to ingest across inputs A, B (default: 64)
  --batch K          flush threshold (default: 8; 1 = fire per event)
  --policy P         count | rank | immediate batching policy (default: count)
  --zipf S           row-skew exponent of the event stream (default: 1.5)
  --workers W        cluster size for the dist/threaded/socket backends
                     (default: 4)
  --backend B        local | dist | threaded | socket | both | all
                     (default: both; 'threaded' runs real message-passing
                     worker threads, 'socket' drives out-of-process workers
                     over the byte-frame protocol, 'all' compares every
                     backend and asserts bit-identical results)
  --connect LIST     comma-separated worker addresses for the socket leg of
                     --backend socket/all (tcp:HOST:PORT or unix:PATH,
                     row-major over the grid; default: self-hosted
                     Unix-socket workers)
  --checkpoint-every N
                     enable checkpoint/replay fault tolerance: snapshot the
                     environment every N firings and keep a delta log in
                     between; failed flushes recover and retry (default:
                     off)
  --kill-worker-after E
                     fault injection: kill one worker after event E
                     (threaded/socket backends; requires --checkpoint-every)
  --pace-ms MS       sleep MS milliseconds between events (lets an external
                     fault injector interleave; default: 0)
  --no-joint         flush each input with its own trigger instead of ONE
                     joint trigger per flush round (§4.4 ablation)
  --sequential-exec  opt out of DAG-staged trigger execution: run one
                     statement per stage in program order (ablation)
  --dense            force dense folds and uncompressed broadcast frames
                     (ablation; default: sparse paths enabled, also
                     switchable via LINVIEW_SPARSE=0)
  --gemm KERNEL      dense GEMM kernel for the whole run (see above)
  --threads N        GEMM thread budget (see above)

SERVE OPTIONS (live maintenance with wait-free snapshot readers):
  --n N              square input dimension (default: 48)
  --events E         rank-1 events to ingest across inputs A, B
                     (default: 256)
  --batch K          flush threshold (default: 8)
  --policy P         count | rank | immediate batching policy
                     (default: count)
  --zipf S           row-skew exponent of the event stream (default: 1.5)
  --workers W        cluster size for the threaded/socket backends
                     (default: 4)
  --backend B        local | threaded | socket (default: local)
  --readers R        closed-loop reader threads hammering the published
                     snapshots while maintenance runs (default: 4)
  --publish-every P  snapshot publish cadence in flush rounds (default: 1;
                     staleness is bounded by P-1 rounds-behind)
  --pace-ms MS       sleep MS milliseconds between events (default: 0)
  --wal-dir DIR      durable checkpoint + write-ahead-log directory: if it
                     already holds a checkpoint, recover from it first
                     (a torn WAL tail is truncated to the last complete
                     record and reported), then keep checkpointing into it
  --checkpoint-every N
                     snapshot cadence for --wal-dir (default: 8)
  --gemm KERNEL      dense GEMM kernel for the whole run (see above)
  --threads N        GEMM thread budget (see above)

  The run exits nonzero if the final published snapshot is not
  bit-identical to the live engine state, or any reader observed a
  non-monotone epoch sequence.

WORKER OPTIONS (host grid partitions for a remote coordinator):
  --listen ADDR      tcp:HOST:PORT or unix:PATH to listen on (required;
                     tcp:HOST:0 picks a free port and prints it)
  --once             exit after the first coordinator session ends with a
                     protocol shutdown (default: serve forever)

SERVE-CLUSTER OPTIONS (spawn a local worker fleet in one process):
  --workers W        number of workers to host (default: 4)
  --dir DIR          directory for the Unix socket files (default: the
                     system temp dir)
";

/// Pins the process-wide GEMM kernel from a `--gemm` flag value.
fn apply_gemm_flag(value: &str) -> Result<(), String> {
    match GemmKernel::from_name(value) {
        Ok(k) => {
            set_default_kernel(Some(k));
            Ok(())
        }
        Err(e) => Err(format!("bad --gemm: {e}")),
    }
}

/// Surfaces a set-but-unrecognized `LINVIEW_GEMM` as a startup warning
/// (the library itself silently ignores it, which once let a typo'd
/// kernel name benchmark the default kernel unnoticed).
fn warn_on_bad_env_kernel() {
    if let Some(e) = linview::matrix::env_kernel_error() {
        eprintln!(
            "warning: ignoring LINVIEW_GEMM: {e}; using kernel '{}'",
            linview::matrix::default_kernel()
        );
    }
    if let Some(e) = linview::matrix::env_threads_error() {
        eprintln!(
            "warning: ignoring LINVIEW_THREADS: {e}; using {} thread(s)",
            gemm_threads()
        );
    }
}

/// Pins the process-wide GEMM thread budget from a `--threads` flag value.
fn apply_threads_flag(value: &str) -> Result<(), String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => {
            set_gemm_threads(Some(n));
            Ok(())
        }
        _ => Err(format!("bad --threads '{value}' (want an integer >= 1)")),
    }
}

struct Args {
    dims: Vec<(String, usize, usize)>,
    program: Option<String>,
    file: Option<String>,
    inputs: Option<Vec<String>>,
    emit: String,
    rank: usize,
    analyze: bool,
    joint: bool,
    factor: bool,
    optimize: bool,
    gamma: f64,
    density: Option<f64>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        dims: Vec::new(),
        program: None,
        file: None,
        inputs: None,
        emit: "trigger".into(),
        rank: 1,
        analyze: false,
        joint: false,
        factor: true,
        optimize: true,
        gamma: 3.0,
        density: None,
    };
    let mut i = 0;
    let next = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--dims" => {
                let v = next(&mut i, "--dims")?;
                for spec in v.split(',') {
                    let (name, shape) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("bad dim spec '{spec}' (want NAME=RxC)"))?;
                    let (r, c) = shape
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("bad shape '{shape}' (want RxC)"))?;
                    let rows = r.parse().map_err(|_| format!("bad row count '{r}'"))?;
                    let cols = c.parse().map_err(|_| format!("bad col count '{c}'"))?;
                    args.dims.push((name.to_string(), rows, cols));
                }
            }
            "--program" => args.program = Some(next(&mut i, "--program")?),
            "--file" => args.file = Some(next(&mut i, "--file")?),
            "--inputs" => {
                args.inputs = Some(
                    next(&mut i, "--inputs")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--emit" => args.emit = next(&mut i, "--emit")?,
            "--rank" => {
                args.rank = next(&mut i, "--rank")?
                    .parse()
                    .map_err(|_| "bad --rank value".to_string())?
            }
            "--analyze" => args.analyze = true,
            "--joint" => args.joint = true,
            "--no-factor" => args.factor = false,
            "--no-optimize" => args.optimize = false,
            "--gamma" => {
                args.gamma = next(&mut i, "--gamma")?
                    .parse()
                    .map_err(|_| "bad --gamma value".to_string())?
            }
            "--density" => {
                let d: f64 = next(&mut i, "--density")?
                    .parse()
                    .map_err(|_| "bad --density value".to_string())?;
                if !(d > 0.0 && d <= 1.0) {
                    return Err(format!("--density {d} out of range (want 0 < D <= 1)"));
                }
                args.density = Some(d);
            }
            "--gemm" => apply_gemm_flag(&next(&mut i, "--gemm")?)?,
            "--threads" => apply_threads_flag(&next(&mut i, "--threads")?)?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.dims.is_empty() {
        return Err("--dims is required".into());
    }
    if args.program.is_none() && args.file.is_none() {
        return Err("one of --program / --file is required".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<String, String> {
    let source = match (&args.program, &args.file) {
        (Some(src), _) => src.clone(),
        (None, Some(path)) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        _ => unreachable!("validated in parse_args"),
    };
    let program = parse_program(&source).map_err(|e| e.to_string())?;

    let mut cat = Catalog::new();
    for (name, r, c) in &args.dims {
        cat.declare(name, *r, *c);
    }
    let inputs: Vec<String> = args
        .inputs
        .clone()
        .unwrap_or_else(|| args.dims.iter().map(|(n, _, _)| n.clone()).collect());
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let normalized = program.hoist_inverses(&input_refs);
    let opts = CompileOptions {
        update_rank: args.rank,
        delta: DeltaOptions {
            factor_common: args.factor,
        },
    };
    if args.analyze {
        let model = CostModel::with_gamma(args.gamma);
        let report =
            analyze(&program, &input_refs, &cat, &model, &opts).map_err(|e| e.to_string())?;
        return Ok(report.to_string());
    }
    if args.joint {
        if args.emit != "trigger" {
            return Err("--joint currently supports --emit trigger only".into());
        }
        let joint =
            compile_joint(&normalized, &input_refs, &cat, &opts).map_err(|e| e.to_string())?;
        return Ok(joint.to_string());
    }
    let mut tp = compile(&normalized, &input_refs, &cat, &opts).map_err(|e| e.to_string())?;
    if args.optimize {
        optimize(&mut tp, &OptimizerOptions::default()).map_err(|e| e.to_string())?;
    }

    let mut out = String::new();
    let emit_trigger = matches!(args.emit.as_str(), "trigger" | "all");
    let emit_octave = matches!(args.emit.as_str(), "octave" | "all");
    let emit_spark = matches!(args.emit.as_str(), "spark" | "all");
    let emit_numpy = matches!(args.emit.as_str(), "numpy" | "all");
    let emit_plan = matches!(args.emit.as_str(), "plan" | "all");
    let emit_dag = matches!(args.emit.as_str(), "dag" | "all");
    let emit_analysis = matches!(args.emit.as_str(), "analysis" | "all");
    if !(emit_trigger
        || emit_octave
        || emit_spark
        || emit_numpy
        || emit_plan
        || emit_dag
        || emit_analysis)
    {
        return Err(format!(
            "unknown --emit '{}' (want trigger|octave|spark|numpy|plan|dag|analysis|all)",
            args.emit
        ));
    }
    if emit_trigger {
        out.push_str(&tp.to_string());
    }
    if emit_dag {
        for t in &tp.triggers {
            let dag = t.dag().map_err(|e| e.to_string())?;
            out.push_str(&format!("ON UPDATE {} staged execution plan:\n", t.input));
            out.push_str(&dag.render(t));
        }
    }
    if emit_octave {
        out.push_str(&octave::emit_program(&tp));
    }
    if emit_spark {
        out.push_str(&spark::emit_program(&tp));
    }
    if emit_numpy {
        out.push_str(&numpy::emit_program(&tp));
    }
    if emit_plan {
        let model = CostModel::with_gamma(args.gamma);
        out.push_str(&plan::render_program(&tp, &model).map_err(|e| e.to_string())?);
    }
    if emit_analysis {
        let report = analyze_program(
            &tp,
            &AnalyzeOptions {
                program: Some(&normalized),
                model: Some(CostModel::with_gamma(args.gamma)),
                density: args.density,
            },
        );
        out.push_str(&report.to_string());
    }
    Ok(out)
}

/// Renders an error with its full `source()` chain, one `caused by:` line
/// per cause, so wrapped errors (runtime → expression → analyzer) surface
/// structurally instead of as nested Debug prints.
fn render_error(e: impl std::error::Error) -> String {
    let mut out = e.to_string();
    let mut src = e.source();
    while let Some(cause) = src {
        out.push_str(&format!("\n  caused by: {cause}"));
        src = cause.source();
    }
    out
}

/// Options of the `lint` subcommand.
struct LintArgs {
    app: Option<String>,
    dims: Vec<(String, usize, usize)>,
    program: Option<String>,
    file: Option<String>,
    inputs: Option<Vec<String>>,
    n: usize,
    rank: usize,
    gamma: f64,
    deny_warnings: bool,
}

fn parse_lint_args(argv: &[String]) -> Result<LintArgs, String> {
    let mut args = LintArgs {
        app: None,
        dims: Vec::new(),
        program: None,
        file: None,
        inputs: None,
        n: 16,
        rank: 1,
        gamma: 3.0,
        deny_warnings: false,
    };
    let next = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--app" => args.app = Some(next(&mut i, "--app")?),
            "--dims" => {
                let v = next(&mut i, "--dims")?;
                for spec in v.split(',') {
                    let (name, shape) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("bad dim spec '{spec}' (want NAME=RxC)"))?;
                    let (r, c) = shape
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("bad shape '{shape}' (want RxC)"))?;
                    let rows = r.parse().map_err(|_| format!("bad row count '{r}'"))?;
                    let cols = c.parse().map_err(|_| format!("bad col count '{c}'"))?;
                    args.dims.push((name.to_string(), rows, cols));
                }
            }
            "--program" => args.program = Some(next(&mut i, "--program")?),
            "--file" => args.file = Some(next(&mut i, "--file")?),
            "--inputs" => {
                args.inputs = Some(
                    next(&mut i, "--inputs")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--n" => {
                args.n = next(&mut i, "--n")?
                    .parse()
                    .map_err(|_| "bad --n value".to_string())?
            }
            "--rank" => {
                args.rank = next(&mut i, "--rank")?
                    .parse()
                    .map_err(|_| "bad --rank value".to_string())?
            }
            "--gamma" => {
                args.gamma = next(&mut i, "--gamma")?
                    .parse()
                    .map_err(|_| "bad --gamma value".to_string())?
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown lint flag '{other}'")),
        }
        i += 1;
    }
    if args.app.is_none() {
        if args.dims.is_empty() {
            return Err("lint needs --app NAME or --dims + --program/--file".into());
        }
        if args.program.is_none() && args.file.is_none() {
            return Err("one of --program / --file is required".into());
        }
    }
    Ok(args)
}

/// One lintable program: name, source program, catalog, dynamic inputs.
struct LintTarget {
    name: String,
    program: linview::compiler::Program,
    cat: Catalog,
    inputs: Vec<String>,
}

/// The shipped app programs `linview lint --app` knows, sized `n`.
fn shipped_apps(n: usize) -> Vec<LintTarget> {
    use linview::apps::IterModel;
    use linview::compiler::Program;
    use linview::expr::Expr;

    let square = |name: &str| {
        let mut cat = Catalog::new();
        cat.declare(name, n, n);
        cat
    };
    let mut out = Vec::new();

    let (program, _) = linview::apps::powers::powers_program(IterModel::Exponential, 4);
    out.push(LintTarget {
        name: "powers".into(),
        program,
        cat: square("A"),
        inputs: vec!["A".into()],
    });

    let (program, _) = linview::apps::sums::sums_program(IterModel::Linear, 4, n);
    out.push(LintTarget {
        name: "sums".into(),
        program,
        cat: square("A"),
        inputs: vec!["A".into()],
    });

    let mut cat = Catalog::new();
    cat.declare("X", n, n.min(4));
    cat.declare("Y", n, 1);
    out.push(LintTarget {
        name: "ols".into(),
        program: parse_program("beta := inv(X' * X) * X' * Y;").expect("shipped OLS parses"),
        cat,
        inputs: vec!["X".into(), "Y".into()],
    });

    let (sums, final_sum) = linview::apps::sums::sums_program(IterModel::Exponential, 4, n);
    let mut program = Program::new();
    for stmt in sums.statements() {
        program.assign(stmt.target.clone(), stmt.expr.clone());
    }
    program.assign("R", Expr::var("A") * Expr::var(final_sum));
    out.push(LintTarget {
        name: "reach".into(),
        program,
        cat: square("A"),
        inputs: vec!["A".into()],
    });

    let mut cat = Catalog::new();
    cat.declare("M", n, n);
    cat.declare("R0", n, 1);
    out.push(LintTarget {
        name: "pagerank-step".into(),
        program: parse_program("R1 := M * R0; R2 := M * R1; R3 := M * R2;")
            .expect("shipped pagerank parses"),
        cat,
        inputs: vec!["M".into(), "R0".into()],
    });

    out
}

/// Renders a compile-time denial as a lint diagnostic line, classifying
/// the error variant into the analyzer pass vocabulary.
fn render_compile_error(e: &linview::expr::ExprError) -> String {
    use linview::expr::ExprError;
    match e {
        ExprError::Analysis {
            pass,
            trigger,
            stmt,
            message,
            suggestion,
        } => {
            let mut line = format!("error[{pass}] trigger '{trigger}'");
            if let Some(i) = stmt {
                line.push_str(&format!(" stmt {i}"));
            }
            line.push_str(&format!(": {message}"));
            if let Some(s) = suggestion {
                line.push_str(&format!("\n  hint: {s}"));
            }
            line
        }
        ExprError::ScheduleCycle { .. } => format!("error[disjointness] {e}"),
        _ => format!("error[shape] {e}"),
    }
}

/// Lints one program: compile (deny-by-default), then the full analyzer
/// report. Returns the rendered output and the (errors, warnings) counts.
fn lint_one(target: &LintTarget, rank: usize, gamma: f64) -> (String, usize, usize) {
    let input_refs: Vec<&str> = target.inputs.iter().map(String::as_str).collect();
    let normalized = target.program.hoist_inverses(&input_refs);
    let opts = CompileOptions {
        update_rank: rank,
        delta: DeltaOptions::default(),
    };
    let mut out = format!("-- lint: {} --\n", target.name);
    match compile(&normalized, &input_refs, &target.cat, &opts) {
        Err(e) => {
            out.push_str(&render_compile_error(&e));
            out.push('\n');
            (out, 1, 0)
        }
        Ok(tp) => {
            let report = analyze_program(
                &tp,
                &AnalyzeOptions {
                    program: Some(&normalized),
                    model: Some(CostModel::with_gamma(gamma)),
                    ..Default::default()
                },
            );
            let (errors, warnings) = report.counts();
            out.push_str(&report.to_string());
            (out, errors, warnings)
        }
    }
}

fn run_lint(args: &LintArgs) -> Result<(String, bool), String> {
    let targets = match &args.app {
        Some(app) => {
            let mut apps = shipped_apps(args.n);
            if app != "all" {
                apps.retain(|t| t.name == *app);
                if apps.is_empty() {
                    return Err(format!(
                        "unknown --app '{app}' (want powers|sums|ols|reach|pagerank-step|all)"
                    ));
                }
            }
            apps
        }
        None => {
            let source = match (&args.program, &args.file) {
                (Some(src), _) => src.clone(),
                (None, Some(path)) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                _ => unreachable!("validated in parse_lint_args"),
            };
            let program = match parse_program(&source) {
                Ok(p) => p,
                Err(e) => {
                    // Parse failures are lint findings, not usage errors:
                    // report structurally and exit nonzero via the caller.
                    return Ok((format!("error[parse] {e}\n"), false));
                }
            };
            let mut cat = Catalog::new();
            for (name, r, c) in &args.dims {
                cat.declare(name, *r, *c);
            }
            let inputs: Vec<String> = args
                .inputs
                .clone()
                .unwrap_or_else(|| args.dims.iter().map(|(n, _, _)| n.clone()).collect());
            vec![LintTarget {
                name: "program".into(),
                program,
                cat,
                inputs,
            }]
        }
    };

    let mut out = String::new();
    let (mut errors, mut warnings) = (0, 0);
    for target in &targets {
        let (text, e, w) = lint_one(target, args.rank, args.gamma);
        out.push_str(&text);
        errors += e;
        warnings += w;
    }
    out.push_str(&format!(
        "lint: {} program(s), {errors} error(s), {warnings} warning(s)\n",
        targets.len()
    ));
    let ok = errors == 0 && !(args.deny_warnings && warnings > 0);
    Ok((out, ok))
}

/// Options of the `engine` subcommand.
struct EngineArgs {
    n: usize,
    events: usize,
    batch: usize,
    policy: String,
    zipf: f64,
    workers: usize,
    backend: String,
    connect: Option<Vec<String>>,
    checkpoint_every: usize,
    kill_worker_after: Option<usize>,
    pace_ms: u64,
    joint: bool,
    sequential: bool,
    dense: bool,
}

fn parse_engine_args(argv: &[String]) -> Result<EngineArgs, String> {
    let mut args = EngineArgs {
        n: 48,
        events: 64,
        batch: 8,
        policy: "count".into(),
        zipf: 1.5,
        workers: 4,
        backend: "both".into(),
        connect: None,
        checkpoint_every: 0,
        kill_worker_after: None,
        pace_ms: 0,
        joint: true,
        sequential: false,
        dense: false,
    };
    let next = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--n" => {
                args.n = next(&mut i, "--n")?
                    .parse()
                    .map_err(|_| "bad --n value".to_string())?
            }
            "--events" => {
                args.events = next(&mut i, "--events")?
                    .parse()
                    .map_err(|_| "bad --events value".to_string())?
            }
            "--batch" => {
                args.batch = next(&mut i, "--batch")?
                    .parse()
                    .map_err(|_| "bad --batch value".to_string())?
            }
            "--policy" => args.policy = next(&mut i, "--policy")?,
            "--zipf" => {
                args.zipf = next(&mut i, "--zipf")?
                    .parse()
                    .map_err(|_| "bad --zipf value".to_string())?
            }
            "--workers" => {
                args.workers = next(&mut i, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_string())?
            }
            "--backend" => args.backend = next(&mut i, "--backend")?,
            "--connect" => {
                args.connect = Some(
                    next(&mut i, "--connect")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--checkpoint-every" => {
                args.checkpoint_every = next(&mut i, "--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every value".to_string())?
            }
            "--kill-worker-after" => {
                args.kill_worker_after = Some(
                    next(&mut i, "--kill-worker-after")?
                        .parse()
                        .map_err(|_| "bad --kill-worker-after value".to_string())?,
                )
            }
            "--pace-ms" => {
                args.pace_ms = next(&mut i, "--pace-ms")?
                    .parse()
                    .map_err(|_| "bad --pace-ms value".to_string())?
            }
            "--no-joint" => args.joint = false,
            "--sequential-exec" => args.sequential = true,
            "--dense" => args.dense = true,
            "--gemm" => apply_gemm_flag(&next(&mut i, "--gemm")?)?,
            "--threads" => apply_threads_flag(&next(&mut i, "--threads")?)?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown engine flag '{other}'")),
        }
        i += 1;
    }
    if !matches!(
        args.backend.as_str(),
        "local" | "dist" | "threaded" | "socket" | "both" | "all"
    ) {
        return Err(format!(
            "unknown --backend '{}' (want local|dist|threaded|socket|both|all)",
            args.backend
        ));
    }
    if !matches!(args.policy.as_str(), "count" | "rank" | "immediate") {
        return Err(format!(
            "unknown --policy '{}' (want count|rank|immediate)",
            args.policy
        ));
    }
    if args.kill_worker_after.is_some() && args.checkpoint_every == 0 {
        return Err(
            "--kill-worker-after needs --checkpoint-every N (recovery must be enabled)".into(),
        );
    }
    if args.connect.is_some() && !matches!(args.backend.as_str(), "socket" | "all") {
        return Err("--connect only applies to --backend socket or all".into());
    }
    Ok(args)
}

/// Streams `events` Zipf-skewed rank-1 updates over the two dynamic inputs
/// of `C := A * B; D := C * C;` through a [`MaintenanceEngine`] on
/// `view`'s backend, returning the report lines and the final `D`.
///
/// `on_event` fires before each ingest with the event index — the fault
/// injector's hook (`--kill-worker-after`). With `--checkpoint-every` set
/// a failed flush is recovered (checkpoint restore + delta-log replay) and
/// retried; the retry re-fires the identical buffer, so a recovered run's
/// views are bit-identical to an undisturbed one.
fn drive_engine<B: ExecBackend>(
    mut view: IncrementalView<B>,
    args: &EngineArgs,
    mut on_event: impl FnMut(usize, &mut MaintenanceEngine<B>),
) -> Result<(String, Matrix), String> {
    let policy = match args.policy.as_str() {
        "immediate" => FlushPolicy::Immediate,
        "rank" => FlushPolicy::Rank(args.batch),
        _ => FlushPolicy::Count(args.batch),
    };
    view.set_exec_options(linview::runtime::ExecOptions {
        sequential: args.sequential,
        sparse_folds: if args.dense { Some(false) } else { None },
        ..Default::default()
    });
    view.reset_comm();
    let mut engine = MaintenanceEngine::new(view, policy);
    engine.set_joint_flush(args.joint);
    let fault_tolerant = args.checkpoint_every > 0;
    if fault_tolerant {
        engine
            .enable_checkpointing(args.checkpoint_every)
            .map_err(render_error)?;
    }
    let mut stream = UpdateStream::new(args.n, args.n, 0.01, 42);
    for i in 0..args.events {
        on_event(i, &mut engine);
        let input = if i % 2 == 0 { "A" } else { "B" };
        let upd = stream.next_rank_one_zipf(args.zipf);
        if let Err(e) = engine.ingest(input, upd) {
            if !fault_tolerant {
                return Err(render_error(e));
            }
            // The failed flush retained its buffer: restore the last
            // checkpoint, replay the log, and retry exactly that flush
            // (NOT flush_all — batch boundaries must match the
            // undisturbed run).
            engine.recover().map_err(render_error)?;
            engine.flush(input).map_err(render_error)?;
        }
        if args.pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(args.pace_ms));
        }
    }
    if let Err(e) = engine.flush_all() {
        if !fault_tolerant {
            return Err(render_error(e));
        }
        engine.recover().map_err(render_error)?;
        engine.flush_all().map_err(render_error)?;
    }
    let stats = engine.stats();
    let comm = engine.comm();
    let mut out = String::new();
    out.push_str(&format!(
        "backend {:>5}: {} events -> {} firings (fired rank {}), mean refresh {:?}, \
         {:.2e} flops/firing\n",
        engine.view().backend().name(),
        stats.events,
        stats.firings,
        stats.fired_rank,
        stats.refresh.mean_wall(),
        stats.refresh.mean_flops(),
    ));
    out.push_str(&format!(
        "             comm: broadcast {} B / {} msgs, shuffle {} B\n",
        comm.broadcast_bytes, comm.broadcast_msgs, comm.shuffle_bytes
    ));
    out.push_str(&format!(
        "             joint: {} rounds, {} trigger firings saved\n",
        stats.joint_rounds, stats.triggers_saved
    ));
    out.push_str(&format!(
        "             sched: {} stmts in {} stages ({} off the critical path{}), \
         {} view writes, {} overlapped broadcasts\n",
        stats.stmts,
        stats.stages,
        stats.stmts_saved(),
        if args.sequential { ", sequential" } else { "" },
        stats.writes,
        stats.overlapped_broadcasts,
    ));
    out.push_str(&format!(
        "             sparse: {} sparse / {} dense folds, {} compressed frames \
         ({} B saved), {} rank shed by recompression{}\n",
        stats.sparse.sparse_folds,
        stats.sparse.dense_folds,
        stats.sparse.compressed_frames,
        stats.sparse.bytes_saved,
        stats.sparse.rank_saved,
        if args.dense { ", forced dense" } else { "" },
    ));
    if fault_tolerant {
        let rec = engine.recovery_stats();
        out.push_str(&format!(
            "             recovery: {} checkpoints, {} logged firings, {} recoveries \
             ({} firings replayed, rank {}), overhead {} B / {} msgs\n",
            rec.checkpoints,
            rec.logged_firings,
            rec.recoveries,
            rec.replayed_firings,
            rec.replayed_rank,
            rec.overhead_bytes(),
            rec.overhead_msgs(),
        ));
    }
    let d = engine.get("D").map_err(render_error)?.clone();
    Ok((out, d))
}

/// The `--backend socket` engine leg: drives the same workload over
/// out-of-process-style workers — either external peers from `--connect`,
/// or a self-hosted Unix-socket fleet spawned for the run.
fn run_socket_engine(
    program: &linview::compiler::Program,
    inputs: &[(&str, Matrix)],
    cat: &Catalog,
    args: &EngineArgs,
) -> Result<(String, Matrix), String> {
    let kill_at = args.kill_worker_after;
    match &args.connect {
        Some(specs) => {
            let addrs = specs
                .iter()
                .map(|s| PeerAddr::parse(s))
                .collect::<Result<Vec<_>, _>>()
                .map_err(render_error)?;
            let backend =
                SocketBackend::connect(addrs, SocketConfig::default()).map_err(render_error)?;
            let view =
                IncrementalView::build_on(backend, program, inputs, cat).map_err(render_error)?;
            drive_engine(view, args, |i, engine| {
                if Some(i) == kill_at {
                    // External workers can't be SIGKILLed from here; tear
                    // the connection instead — the same failure surface
                    // (dead peer) from the engine's point of view.
                    let victim = engine.view().backend().pool().workers() - 1;
                    engine
                        .view()
                        .backend()
                        .pool()
                        .transport()
                        .disconnect(victim);
                }
            })
        }
        None => {
            let cluster = linview::dist::Cluster::try_new(args.workers).map_err(render_error)?;
            let (gr, gc) = (cluster.grid_rows(), cluster.grid_cols());
            let (mut servers, addrs) = linview::dist::spawn_local_grid(gr, gc, "cli")
                .map_err(|e| format!("cannot spawn local socket workers: {e}"))?;
            let backend =
                SocketBackend::connect_with_cluster(cluster, addrs, SocketConfig::default())
                    .map_err(render_error)?;
            let view =
                IncrementalView::build_on(backend, program, inputs, cat).map_err(render_error)?;
            drive_engine(view, args, |i, _engine| {
                if Some(i) == kill_at {
                    // Abrupt worker death: its state dies with it. A fresh
                    // (empty) worker is brought up on the same address so
                    // recovery's revive + re-install can land.
                    let victim = servers.len() - 1;
                    let old = servers.remove(victim);
                    let addr = old.addr().clone();
                    old.kill();
                    match WorkerServer::spawn(&addr) {
                        Ok(s) => servers.insert(victim, s),
                        Err(e) => eprintln!("warning: could not respawn worker {victim}: {e}"),
                    }
                }
            })
        }
    }
}

fn run_engine(args: &EngineArgs) -> Result<String, String> {
    let program = parse_program("C := A * B; D := C * C;").map_err(|e| e.to_string())?;
    let mut cat = Catalog::new();
    cat.declare("A", args.n, args.n);
    cat.declare("B", args.n, args.n);
    let a = Matrix::random_spectral(args.n, 7, 0.8);
    let b = Matrix::random_spectral(args.n, 8, 0.8);
    let inputs = [("A", a), ("B", b)];

    let mut out = format!(
        "maintenance engine: C := A * B; D := C * C;  (n = {}, policy = {}({}), zipf = {})\n\
         gemm: kernel {}, {} thread budget\n",
        args.n,
        args.policy,
        args.batch,
        args.zipf,
        linview::matrix::default_kernel(),
        gemm_threads(),
    );
    let mut results: Vec<(String, Matrix)> = Vec::new();
    if matches!(args.backend.as_str(), "local" | "both" | "all") {
        let view = IncrementalView::build(&program, &inputs, &cat).map_err(render_error)?;
        let (report, d) = drive_engine(view, args, |_, _| {})?;
        out.push_str(&report);
        results.push(("local".into(), d));
    }
    if matches!(args.backend.as_str(), "dist" | "both" | "all") {
        let backend = DistBackend::new(args.workers).map_err(render_error)?;
        let view =
            IncrementalView::build_on(backend, &program, &inputs, &cat).map_err(render_error)?;
        let (report, d) = drive_engine(view, args, |_, _| {})?;
        out.push_str(&report);
        results.push(("dist".into(), d));
    }
    if matches!(args.backend.as_str(), "threaded" | "all") {
        let backend = ThreadedBackend::new(args.workers).map_err(render_error)?;
        let view =
            IncrementalView::build_on(backend, &program, &inputs, &cat).map_err(render_error)?;
        let kill_at = args.kill_worker_after;
        let victim = args.workers - 1;
        let (report, d) = drive_engine(view, args, |i, engine| {
            if Some(i) == kill_at {
                engine
                    .view_mut()
                    .backend_mut()
                    .pool_mut()
                    .kill_worker(victim);
            }
        })?;
        out.push_str(&report);
        results.push(("threaded".into(), d));
    }
    if matches!(args.backend.as_str(), "socket" | "all") {
        let (report, d) = run_socket_engine(&program, &inputs, &cat, args)?;
        out.push_str(&report);
        results.push(("socket".into(), d));
    }
    if let Some((first_name, first)) = results.first() {
        for (name, d) in &results[1..] {
            let diff = first.max_abs_diff(d);
            out.push_str(&format!(
                "backend divergence on D ({first_name} vs {name}): {diff:.2e}\n"
            ));
            if diff != 0.0 {
                return Err(format!(
                    "{first_name} and {name} backends diverged by {diff:.2e} — shared path broken"
                ));
            }
        }
    }
    Ok(out)
}

/// Options of the `serve` subcommand.
struct ServeArgs {
    n: usize,
    events: usize,
    batch: usize,
    policy: String,
    zipf: f64,
    workers: usize,
    backend: String,
    readers: usize,
    publish_every: u64,
    pace_ms: u64,
    wal_dir: Option<String>,
    checkpoint_every: usize,
}

fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        n: 48,
        events: 256,
        batch: 8,
        policy: "count".into(),
        zipf: 1.5,
        workers: 4,
        backend: "local".into(),
        readers: 4,
        publish_every: 1,
        pace_ms: 0,
        wal_dir: None,
        checkpoint_every: 8,
    };
    let next = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--n" => {
                args.n = next(&mut i, "--n")?
                    .parse()
                    .map_err(|_| "bad --n value".to_string())?
            }
            "--events" => {
                args.events = next(&mut i, "--events")?
                    .parse()
                    .map_err(|_| "bad --events value".to_string())?
            }
            "--batch" => {
                args.batch = next(&mut i, "--batch")?
                    .parse()
                    .map_err(|_| "bad --batch value".to_string())?
            }
            "--policy" => args.policy = next(&mut i, "--policy")?,
            "--zipf" => {
                args.zipf = next(&mut i, "--zipf")?
                    .parse()
                    .map_err(|_| "bad --zipf value".to_string())?
            }
            "--workers" => {
                args.workers = next(&mut i, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_string())?
            }
            "--backend" => args.backend = next(&mut i, "--backend")?,
            "--readers" => {
                args.readers = next(&mut i, "--readers")?
                    .parse()
                    .map_err(|_| "bad --readers value".to_string())?
            }
            "--publish-every" => {
                args.publish_every = next(&mut i, "--publish-every")?
                    .parse()
                    .map_err(|_| "bad --publish-every value".to_string())?
            }
            "--pace-ms" => {
                args.pace_ms = next(&mut i, "--pace-ms")?
                    .parse()
                    .map_err(|_| "bad --pace-ms value".to_string())?
            }
            "--wal-dir" => args.wal_dir = Some(next(&mut i, "--wal-dir")?),
            "--checkpoint-every" => {
                args.checkpoint_every = next(&mut i, "--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad --checkpoint-every value".to_string())?
            }
            "--gemm" => apply_gemm_flag(&next(&mut i, "--gemm")?)?,
            "--threads" => apply_threads_flag(&next(&mut i, "--threads")?)?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown serve flag '{other}'")),
        }
        i += 1;
    }
    if !matches!(args.backend.as_str(), "local" | "threaded" | "socket") {
        return Err(format!(
            "unknown --backend '{}' (want local|threaded|socket)",
            args.backend
        ));
    }
    if !matches!(args.policy.as_str(), "count" | "rank" | "immediate") {
        return Err(format!(
            "unknown --policy '{}' (want count|rank|immediate)",
            args.policy
        ));
    }
    if args.readers == 0 {
        return Err("--readers must be >= 1".into());
    }
    if args.checkpoint_every == 0 {
        return Err("--checkpoint-every must be >= 1".into());
    }
    Ok(args)
}

/// Runs live maintenance with a closed-loop reader population on the
/// wait-free snapshot path, then verifies the published state is
/// bit-identical to the live engine.
fn run_serve(args: &ServeArgs) -> Result<String, String> {
    let program = parse_program("C := A * B; D := C * C;").map_err(|e| e.to_string())?;
    let mut cat = Catalog::new();
    cat.declare("A", args.n, args.n);
    cat.declare("B", args.n, args.n);
    let a = Matrix::random_spectral(args.n, 7, 0.8);
    let b = Matrix::random_spectral(args.n, 8, 0.8);
    let inputs = [("A", a), ("B", b)];
    match args.backend.as_str() {
        "threaded" => {
            let backend = ThreadedBackend::new(args.workers).map_err(render_error)?;
            let view = IncrementalView::build_on(backend, &program, &inputs, &cat)
                .map_err(render_error)?;
            serve_on(view, args)
        }
        "socket" => {
            let cluster = linview::dist::Cluster::try_new(args.workers).map_err(render_error)?;
            let (gr, gc) = (cluster.grid_rows(), cluster.grid_cols());
            let (servers, addrs) = linview::dist::spawn_local_grid(gr, gc, "serve")
                .map_err(|e| format!("cannot spawn local socket workers: {e}"))?;
            let backend =
                SocketBackend::connect_with_cluster(cluster, addrs, SocketConfig::default())
                    .map_err(render_error)?;
            let view = IncrementalView::build_on(backend, &program, &inputs, &cat)
                .map_err(render_error)?;
            let out = serve_on(view, args);
            drop(servers);
            out
        }
        _ => {
            let view = IncrementalView::build(&program, &inputs, &cat).map_err(render_error)?;
            serve_on(view, args)
        }
    }
}

fn serve_on<B: ExecBackend>(view: IncrementalView<B>, args: &ServeArgs) -> Result<String, String> {
    use linview::runtime::{percentile_ns, ReaderPool, ReaderReport};

    let policy = match args.policy.as_str() {
        "immediate" => FlushPolicy::Immediate,
        "rank" => FlushPolicy::Rank(args.batch),
        _ => FlushPolicy::Count(args.batch),
    };
    let mut engine = MaintenanceEngine::new(view, policy);
    let mut out = format!(
        "serve: C := A * B; D := C * C;  (n = {}, backend {}, policy {}({}), \
         {} readers, publish every {})\n",
        args.n,
        engine.view().backend().name(),
        args.policy,
        args.batch,
        args.readers,
        args.publish_every,
    );
    if let Some(dir) = &args.wal_dir {
        let dir = std::path::Path::new(dir);
        if dir.join(linview::runtime::engine::CHECKPOINT_FILE).exists() {
            let rec = engine
                .recover_from_disk(args.checkpoint_every, dir)
                .map_err(render_error)?;
            out.push_str(&format!(
                "recovered from {}: {} firing(s) replayed, {} torn WAL tail byte(s) truncated\n",
                dir.display(),
                rec.replayed_firings,
                rec.torn_tail_bytes,
            ));
        } else {
            engine
                .enable_durable_checkpointing(args.checkpoint_every, dir)
                .map_err(render_error)?;
        }
    }
    let handle = engine.enable_serving(args.publish_every);
    let pool = ReaderPool::spawn(&handle, args.readers, &[]);
    let mut stream = UpdateStream::new(args.n, args.n, 0.01, 42);
    let t0 = std::time::Instant::now();
    for i in 0..args.events {
        let input = if i % 2 == 0 { "A" } else { "B" };
        engine
            .ingest(input, stream.next_rank_one_zipf(args.zipf))
            .map_err(render_error)?;
        if args.pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(args.pace_ms));
        }
    }
    engine.flush_all().map_err(render_error)?;
    let maint_wall = t0.elapsed();
    // Staleness at the moment maintenance stopped, before the final
    // forced sync below zeroes it.
    let final_staleness = handle.staleness();
    engine.publish_snapshot();
    let reports = pool.stop();
    let mut total = ReaderReport {
        epochs_monotone: true,
        ..ReaderReport::default()
    };
    for r in &reports {
        total.merge(r);
    }
    let stats = engine.stats();
    out.push_str(&format!(
        "maintenance: {} events -> {} firings in {:?} (mean refresh {:?})\n",
        stats.events,
        stats.firings,
        maint_wall,
        stats.refresh.mean_wall(),
    ));
    let reads_per_sec = total.reads as f64 / maint_wall.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "readers: {} thread(s), {} reads ({:.3e} reads/s), staleness max {} \
         final {} (rounds-behind), epoch {} after {} rounds\n",
        args.readers,
        total.reads,
        reads_per_sec,
        total.max_staleness,
        final_staleness,
        handle.epoch(),
        handle.rounds(),
    ));
    let p50 = percentile_ns(&mut total.latencies_ns, 50.0);
    let p99 = percentile_ns(&mut total.latencies_ns, 99.0);
    out.push_str(&format!("read latency: p50 {p50} ns, p99 {p99} ns\n"));
    let snap = handle.snapshot();
    let mut worst = 0.0f64;
    for name in snap.names() {
        let live = engine.get(name).map_err(render_error)?;
        let published = snap.get(name).map_err(render_error)?;
        worst = worst.max(live.max_abs_diff(published));
    }
    out.push_str(&format!(
        "serve divergence (snapshot vs live, {} views): {worst:.2e}\n",
        snap.names().len()
    ));
    if worst != 0.0 {
        return Err(format!(
            "published snapshot diverged from live state by {worst:.2e} — serving path broken"
        ));
    }
    if !total.epochs_monotone {
        return Err("a reader observed a non-monotone epoch sequence — serving path broken".into());
    }
    Ok(out)
}

/// Options of the `worker` subcommand.
struct WorkerArgs {
    listen: String,
    once: bool,
}

fn parse_worker_args(argv: &[String]) -> Result<WorkerArgs, String> {
    let mut listen = None;
    let mut once = false;
    let next = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => listen = Some(next(&mut i, "--listen")?),
            "--once" => once = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown worker flag '{other}'")),
        }
        i += 1;
    }
    let listen = listen.ok_or_else(|| "--listen ADDR is required".to_string())?;
    Ok(WorkerArgs { listen, once })
}

/// Hosts one grid worker: bind, print the bound address (so scripts can
/// use `tcp:HOST:0`), and serve coordinator sessions until told to stop.
fn run_worker(args: &WorkerArgs) -> Result<(), String> {
    let addr = PeerAddr::parse(&args.listen).map_err(render_error)?;
    let listener =
        linview::dist::bind(&addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let actual = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    println!("linview worker listening on {actual}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    linview::dist::serve_worker(listener, ServeOptions { once: args.once })
        .map_err(|e| format!("worker on {actual} failed: {e}"))
}

/// Hosts a whole worker fleet in one process: W Unix-socket workers whose
/// addresses are printed one per line for a coordinator's `--connect`.
fn run_serve_cluster(argv: &[String]) -> Result<(), String> {
    let mut workers = 4usize;
    let mut dir: Option<String> = None;
    let next = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--workers" => {
                workers = next(&mut i, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_string())?
            }
            "--dir" => dir = Some(next(&mut i, "--dir")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown serve-cluster flag '{other}'")),
        }
        i += 1;
    }
    // Validate the grid up front so a bad count fails loudly here instead
    // of in every coordinator that tries to connect.
    let cluster = linview::dist::Cluster::try_new(workers).map_err(render_error)?;
    let base = dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let pid = std::process::id();
    let mut servers = Vec::with_capacity(workers);
    for idx in 0..workers {
        let path = base.join(format!("lv-cluster-{pid}-{idx}.sock"));
        let server = WorkerServer::spawn(&PeerAddr::Unix(path))
            .map_err(|e| format!("cannot spawn worker {idx}: {e}"))?;
        println!("{}", server.addr());
        servers.push(server);
    }
    println!(
        "serve-cluster: {}x{} grid up ({} workers); Ctrl-C to stop",
        cluster.grid_rows(),
        cluster.grid_cols(),
        workers
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    warn_on_bad_env_kernel();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("worker") {
        return match parse_worker_args(&argv[1..]).and_then(|a| run_worker(&a)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) if msg.is_empty() => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("serve-cluster") {
        return match run_serve_cluster(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) if msg.is_empty() => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("lint") {
        return match parse_lint_args(&argv[1..]).and_then(|a| run_lint(&a)) {
            Ok((output, ok)) => {
                print!("{output}");
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(msg) if msg.is_empty() => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::from(2)
            }
        };
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return match parse_serve_args(&argv[1..]).and_then(|a| run_serve(&a)) {
            Ok(output) => {
                print!("{output}");
                ExitCode::SUCCESS
            }
            Err(msg) if msg.is_empty() => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("engine") {
        return match parse_engine_args(&argv[1..]).and_then(|a| run_engine(&a)) {
            Ok(output) => {
                print!("{output}");
                ExitCode::SUCCESS
            }
            Err(msg) if msg.is_empty() => {
                print!("{USAGE}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(&argv) {
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Ok(args) => match run(&args) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
