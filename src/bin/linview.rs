//! The LINVIEW command-line compiler.
//!
//! Mirrors the paper's Fig. 2 workflow: APL-style program in, incremental
//! trigger program out, with a choice of backends.
//!
//! ```text
//! linview --dims A=64x64 --program "B := A * A; C := B * B;"
//! linview --dims X=100x10,Y=100x1 --inputs X \
//!         --program "Z := X' * X; W := inv(Z); beta := W * X' * Y;" \
//!         --emit octave
//! linview --dims A=64x64 --file prog.lv --emit plan --rank 4 --no-factor
//! ```

use linview::compiler::codegen::{numpy, octave, plan, spark};
use linview::compiler::optimizer::{optimize, OptimizerOptions};
use linview::compiler::parse::parse_program;
use linview::compiler::{analyze, compile, compile_joint, CompileOptions};
use linview::expr::cost::CostModel;
use linview::expr::{Catalog, DeltaOptions};
use std::process::ExitCode;

const USAGE: &str = "\
linview — incremental view maintenance compiler for linear algebra programs

USAGE:
  linview --dims NAME=RxC[,NAME=RxC...] [OPTIONS] (--program SRC | --file PATH)

OPTIONS:
  --dims LIST        base matrix shapes, e.g. A=64x64,Y=64x1   (required)
  --program SRC      program text, e.g. \"B := A * A; C := B * B;\"
  --file PATH        read the program from a file
  --inputs LIST      dynamic inputs (default: every matrix in --dims)
  --emit KIND        trigger | octave | spark | numpy | plan | all  (default: trigger)
  --rank K           update rank of the incoming deltas (default: 1)
  --analyze          print the predicted REEVAL-vs-INCR report (§5 as an API)
  --joint            emit ONE trigger for simultaneous updates to all
                     --inputs (§4.4 / Example 4.5) instead of one per input
  --no-factor        disable §4.3 common-factor extraction (ablation)
  --no-optimize      skip CSE / copy propagation / dead-code elimination
  --gamma G          matmul exponent for the plan's cost model (default: 3.0)
";

struct Args {
    dims: Vec<(String, usize, usize)>,
    program: Option<String>,
    file: Option<String>,
    inputs: Option<Vec<String>>,
    emit: String,
    rank: usize,
    analyze: bool,
    joint: bool,
    factor: bool,
    optimize: bool,
    gamma: f64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        dims: Vec::new(),
        program: None,
        file: None,
        inputs: None,
        emit: "trigger".into(),
        rank: 1,
        analyze: false,
        joint: false,
        factor: true,
        optimize: true,
        gamma: 3.0,
    };
    let mut i = 0;
    let next = |i: &mut usize, what: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {what}"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--dims" => {
                let v = next(&mut i, "--dims")?;
                for spec in v.split(',') {
                    let (name, shape) = spec
                        .split_once('=')
                        .ok_or_else(|| format!("bad dim spec '{spec}' (want NAME=RxC)"))?;
                    let (r, c) = shape
                        .split_once(['x', 'X'])
                        .ok_or_else(|| format!("bad shape '{shape}' (want RxC)"))?;
                    let rows = r.parse().map_err(|_| format!("bad row count '{r}'"))?;
                    let cols = c.parse().map_err(|_| format!("bad col count '{c}'"))?;
                    args.dims.push((name.to_string(), rows, cols));
                }
            }
            "--program" => args.program = Some(next(&mut i, "--program")?),
            "--file" => args.file = Some(next(&mut i, "--file")?),
            "--inputs" => {
                args.inputs = Some(
                    next(&mut i, "--inputs")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--emit" => args.emit = next(&mut i, "--emit")?,
            "--rank" => {
                args.rank = next(&mut i, "--rank")?
                    .parse()
                    .map_err(|_| "bad --rank value".to_string())?
            }
            "--analyze" => args.analyze = true,
            "--joint" => args.joint = true,
            "--no-factor" => args.factor = false,
            "--no-optimize" => args.optimize = false,
            "--gamma" => {
                args.gamma = next(&mut i, "--gamma")?
                    .parse()
                    .map_err(|_| "bad --gamma value".to_string())?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.dims.is_empty() {
        return Err("--dims is required".into());
    }
    if args.program.is_none() && args.file.is_none() {
        return Err("one of --program / --file is required".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<String, String> {
    let source = match (&args.program, &args.file) {
        (Some(src), _) => src.clone(),
        (None, Some(path)) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        _ => unreachable!("validated in parse_args"),
    };
    let program = parse_program(&source).map_err(|e| e.to_string())?;

    let mut cat = Catalog::new();
    for (name, r, c) in &args.dims {
        cat.declare(name, *r, *c);
    }
    let inputs: Vec<String> = args
        .inputs
        .clone()
        .unwrap_or_else(|| args.dims.iter().map(|(n, _, _)| n.clone()).collect());
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();

    let normalized = program.hoist_inverses(&input_refs);
    let opts = CompileOptions {
        update_rank: args.rank,
        delta: DeltaOptions {
            factor_common: args.factor,
        },
    };
    if args.analyze {
        let model = CostModel::with_gamma(args.gamma);
        let report =
            analyze(&program, &input_refs, &cat, &model, &opts).map_err(|e| e.to_string())?;
        return Ok(report.to_string());
    }
    if args.joint {
        if args.emit != "trigger" {
            return Err("--joint currently supports --emit trigger only".into());
        }
        let joint =
            compile_joint(&normalized, &input_refs, &cat, &opts).map_err(|e| e.to_string())?;
        return Ok(joint.to_string());
    }
    let mut tp = compile(&normalized, &input_refs, &cat, &opts).map_err(|e| e.to_string())?;
    if args.optimize {
        optimize(&mut tp, &OptimizerOptions::default()).map_err(|e| e.to_string())?;
    }

    let mut out = String::new();
    let emit_trigger = matches!(args.emit.as_str(), "trigger" | "all");
    let emit_octave = matches!(args.emit.as_str(), "octave" | "all");
    let emit_spark = matches!(args.emit.as_str(), "spark" | "all");
    let emit_numpy = matches!(args.emit.as_str(), "numpy" | "all");
    let emit_plan = matches!(args.emit.as_str(), "plan" | "all");
    if !(emit_trigger || emit_octave || emit_spark || emit_numpy || emit_plan) {
        return Err(format!(
            "unknown --emit '{}' (want trigger|octave|spark|numpy|plan|all)",
            args.emit
        ));
    }
    if emit_trigger {
        out.push_str(&tp.to_string());
    }
    if emit_octave {
        out.push_str(&octave::emit_program(&tp));
    }
    if emit_spark {
        out.push_str(&spark::emit_program(&tp));
    }
    if emit_numpy {
        out.push_str(&numpy::emit_program(&tp));
    }
    if emit_plan {
        let model = CostModel::with_gamma(args.gamma);
        out.push_str(&plan::render_program(&tp, &model).map_err(|e| e.to_string())?);
    }
    Ok(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv) {
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Ok(args) => match run(&args) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
