//! # linview
//!
//! A from-scratch Rust reproduction of **LINVIEW** — *Incremental View
//! Maintenance for Complex Analytical Queries* (Nikolic, ElSeidy, Koch;
//! SIGMOD 2014).
//!
//! LINVIEW maintains the results of (iterative) linear-algebra programs
//! under point updates to their input matrices. Instead of re-running
//! `O(nᵞ)` matrix products after every change, it derives *factored delta
//! expressions* `Δ = U Vᵀ` (products of low-rank blocks), propagates them
//! statement by statement, and applies them as `O(kn²)` low-rank view
//! updates — containing the "avalanche effect" by which a single-entry
//! change would otherwise pollute every downstream view.
//!
//! ## Crate map
//!
//! * [`matrix`] — dense kernels (blocked parallel matmul, LU inverse, block
//!   stacking, FLOP accounting).
//! * [`expr`] — symbolic expressions, the delta rules of §4.1, factored
//!   deltas with common-factor extraction (§4.2–4.3), cost model, chain DP.
//! * [`compiler`] — Algorithm 1: programs → update triggers; optimizer;
//!   Octave code generator; APL-style text frontend.
//! * [`runtime`] — evaluation, trigger execution (incl. Sherman–Morrison),
//!   update streams, REEVAL/INCR view maintainers.
//! * [`dist`] — a simulated cluster (grid partitioning, communication
//!   metering) standing in for the paper's Spark backend.
//! * [`sparse`] — CSR kernel and evolving graphs whose edge mutations are
//!   exposed as the factored rank-1 transition-matrix updates the paper's
//!   workload model assumes; exact sparse PageRank baseline.
//! * [`apps`] — the paper's workloads: matrix powers, sums of powers, the
//!   general form `Tᵢ₊₁ = A·Tᵢ + B` (REEVAL/INCR/HYBRID), OLS, gradient
//!   descent, PageRank.
//!
//! ## Quickstart
//!
//! ```
//! use linview::prelude::*;
//!
//! // The A⁴ program of the paper's Example 1.1.
//! let program = parse_program("B := A * A; C := B * B;").unwrap();
//! let mut cat = Catalog::new();
//! cat.declare("A", 64, 64);
//!
//! let a = Matrix::random_spectral(64, 7, 0.9);
//! let mut view = IncrementalView::build(&program, &[("A", a)], &cat).unwrap();
//!
//! // Stream a rank-1 row update through the compiled trigger.
//! let mut updates = UpdateStream::new(64, 64, 0.01, 42);
//! view.apply("A", &updates.next_rank_one()).unwrap();
//! assert_eq!(view.get("C").unwrap().shape(), (64, 64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use linview_apps as apps;
pub use linview_compiler as compiler;
pub use linview_dist as dist;
pub use linview_expr as expr;
pub use linview_matrix as matrix;
pub use linview_runtime as runtime;
pub use linview_sparse as sparse;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use linview_apps::convergence::ConvergentIteration;
    pub use linview_apps::distributed::DistIncrView;
    pub use linview_apps::expm::{IncrExpm, ReevalExpm};
    pub use linview_apps::gd::GradientDescentLR;
    pub use linview_apps::general::{GeneralForm, Strategy};
    pub use linview_apps::ols::{IncrOls, ReevalOls};
    pub use linview_apps::pagerank::PageRank;
    pub use linview_apps::powers::{IncrPowers, ReevalPowers};
    pub use linview_apps::reach::Reachability;
    pub use linview_apps::sums::{IncrSums, ReevalSums};
    pub use linview_apps::IterModel;
    pub use linview_compiler::parse::parse_program;
    pub use linview_compiler::{
        analyze, compile, AnalysisReport, CompileOptions, Program, StmtDag, TriggerProgram,
    };
    pub use linview_dist::{dist_add_low_rank, dist_matmul, Cluster, DistMatrix};
    pub use linview_expr::{Catalog, Expr};
    pub use linview_matrix::{ApproxEq, Cholesky, Matrix};
    pub use linview_runtime::{
        sherman_morrison, woodbury, BatchUpdate, Env, Evaluator, ExecOptions, IncrementalView,
        RankOneUpdate, ReevalView, UpdateStream,
    };
    pub use linview_sparse::{pagerank, pagerank_warm, CsrMatrix, Graph, PageRankOptions};
}
