#!/usr/bin/env bash
# Multi-process fault-tolerance smoke test.
#
# Launches a 4-worker Unix-socket cluster (four real `linview worker`
# processes), then runs two drills against it:
#
#  1. SIGKILL drill — a paced `--backend socket` engine run streams against
#     the fleet while this script `kill -9`s one worker mid-stream and
#     restarts a fresh, empty process on the same address. The engine must
#     recover (checkpoint restore + delta-log replay over the reconnect)
#     and report exactly one recovery.
#
#  2. Identical-recovery drill — `--backend all --connect` runs every
#     backend from the same seed with `--kill-worker-after` injecting a
#     worker death into the threaded leg and a torn connection into the
#     socket leg. The engine itself exits nonzero if any backend's
#     recovered view diverges from the undisturbed local reference by even
#     one bit, and this run doubles as proof that the SIGKILLed-and-
#     restarted fleet is fully healthy.
#
# Usage: tools/socket_cluster_smoke.sh [path-to-linview-binary]

set -euo pipefail

BIN="${1:-${LINVIEW_BIN:-target/release/linview}}"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/lv-smoke.XXXXXX")"
declare -a PIDS=()

cleanup() {
    for pid in "${PIDS[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

if [ ! -x "$BIN" ]; then
    echo "error: $BIN not found or not executable (run: cargo build --release)" >&2
    exit 1
fi

start_worker() { # start_worker IDX
    local sock="$DIR/w$1.sock"
    "$BIN" worker --listen "unix:$sock" >"$DIR/worker$1.log" 2>&1 &
    PIDS[$1]=$!
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        sleep 0.05
    done
    echo "error: worker $1 never bound $sock" >&2
    exit 1
}

for i in 0 1 2 3; do start_worker "$i"; done
CONNECT="unix:$DIR/w0.sock,unix:$DIR/w1.sock,unix:$DIR/w2.sock,unix:$DIR/w3.sock"
echo "== 4-worker Unix-socket cluster up in $DIR"

# --- Drill 1: SIGKILL a worker process mid-stream -------------------------
LOG1="$DIR/sigkill.log"
"$BIN" engine --n 16 --events 40 --batch 2 --workers 4 \
    --backend socket --connect "$CONNECT" \
    --checkpoint-every 2 --pace-ms 50 >"$LOG1" 2>&1 &
ENGINE=$!

sleep 0.8
echo "== SIGKILLing worker 2 (pid ${PIDS[2]}) mid-stream"
kill -9 "${PIDS[2]}"
wait "${PIDS[2]}" 2>/dev/null || true
start_worker 2 # fresh empty process, same socket path

if ! wait "$ENGINE"; then
    echo "error: engine did not survive the worker SIGKILL" >&2
    cat "$LOG1" >&2
    exit 1
fi
cat "$LOG1"
if ! grep -q " 1 recoveries" "$LOG1"; then
    echo "error: no recovery recorded — the SIGKILL landed outside the stream" >&2
    exit 1
fi
echo "== drill 1 OK: SIGKILLed worker recovered via checkpoint/replay"

# --- Drill 2: every backend, injected kills, bit-identity enforced --------
LOG2="$DIR/identity.log"
if ! "$BIN" engine --n 16 --events 40 --batch 2 --workers 4 \
    --backend all --connect "$CONNECT" \
    --checkpoint-every 2 --kill-worker-after 20 >"$LOG2" 2>&1; then
    echo "error: kill-and-recover run is not identical to the reference" >&2
    cat "$LOG2" >&2
    exit 1
fi
cat "$LOG2"
for pair in "local vs dist" "local vs threaded" "local vs socket"; do
    if ! grep -q "backend divergence on D ($pair): 0.00e0" "$LOG2"; then
        echo "error: missing zero-divergence line for $pair" >&2
        exit 1
    fi
done
if [ "$(grep -c " 1 recoveries" "$LOG2")" -lt 2 ]; then
    echo "error: expected recoveries on both the threaded and socket legs" >&2
    exit 1
fi
echo "== drill 2 OK: recovered backends bit-identical to the local reference"
echo "socket cluster smoke: PASS"
