#!/usr/bin/env bash
# Unsafe-code budget gate.
#
# Counts `unsafe fn` / `unsafe {` / `unsafe impl` occurrences in workspace
# source (crates/ + src/, vendored deps excluded) and fails when the count
# exceeds the committed budget in tools/unsafe_budget.txt. Raising the
# budget is a reviewed change: every new unsafe block must carry a
# `// SAFETY:` comment (enforced separately by clippy's
# undocumented_unsafe_blocks lint) and live in a crate without
# `#![forbid(unsafe_code)]` — currently only linview-matrix qualifies.
set -euo pipefail
cd "$(dirname "$0")/.."

budget=$(tr -d '[:space:]' < tools/unsafe_budget.txt)
count=$(grep -rE '\bunsafe (fn|\{|impl)' --include='*.rs' crates/ src/ | wc -l | tr -d ' ')

echo "unsafe occurrences: ${count} (budget: ${budget})"
if [ "${count}" -gt "${budget}" ]; then
    echo "error: unsafe count ${count} exceeds the committed budget ${budget}." >&2
    echo "If the new unsafe code is justified, document it with a SAFETY" >&2
    echo "comment and raise tools/unsafe_budget.txt in the same change." >&2
    exit 1
fi
