//! Offline stand-in for the `bytes` crate.
//!
//! Provides cheaply-cloneable immutable [`Bytes`] (an `Arc<[u8]>` window),
//! growable [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits — the
//! exact surface the checkpoint format uses. Reads advance an internal
//! cursor; `slice`/`copy_to_bytes` share the underlying allocation.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// A cheaply-cloneable, contiguous slice of memory with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Length of the remaining view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the current view (indices relative to it); shares the
    /// underlying allocation.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds of {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> BytesMut {
        BytesMut { vec: v.to_vec() }
    }
}

/// Sequential little-endian reads over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes. Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Fills `dst` from the front of the buffer. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Splits off the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "buffer underflow");
        let out = Bytes::from(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "cannot advance past the end");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"LNVW");
        buf.put_u32_le(1);
        buf.put_u64_le(77);
        buf.put_f64_le(0.5);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 4 + 4 + 8 + 8);
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"LNVW");
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(b.get_u64_le(), 77);
        assert_eq!(b.get_f64_le(), 0.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slices_share_and_bound_check() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 7);
    }

    #[test]
    fn bytesmut_is_indexable() {
        let mut m = BytesMut::from(&b"abc"[..]);
        m[0] = b'X';
        assert_eq!(&m[..], b"Xbc");
    }
}
