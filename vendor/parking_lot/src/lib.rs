//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The API difference that matters to callers: `lock()` returns the guard
//! directly (no poisoning `Result`). A poisoned std lock is recovered
//! transparently — panicking while holding a lock never wedges later users.

#![warn(missing_docs)]

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
