//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: a deterministic, seeded
//! [`rngs::StdRng`] (xoshiro256**), the [`SeedableRng`] constructor trait,
//! and the [`RngExt`] extension trait with `random::<T>()` and
//! `random_range(..)`. Streams are reproducible across runs and platforms;
//! statistical quality is more than sufficient for test workloads.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's standard RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from an RNG's raw words.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges samplable uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        let v = (self.start as i64)..(self.end as i64);
        v.sample_from(rng) as i32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore + Sized {
    /// A uniform sample of `T` (e.g. `f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a half-open range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.random::<u64>()).collect::<Vec<_>>()
        );
    }
}
