//! Offline stand-in for the `criterion` crate.
//!
//! Compiles the workspace's `benches/*.rs` sources unchanged and runs each
//! benchmark as a short timed loop, printing mean wall time per iteration.
//! There is no statistical analysis, warm-up schedule, or HTML report —
//! this exists so `cargo bench` produces comparable relative numbers and
//! `cargo build --benches` keeps the bench sources compiling.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How expensive each batch's setup output is to hold in memory; accepted
/// for source compatibility, ignored by the timing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per measured iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    /// Like [`Bencher::iter_batched`], passing the input by mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for every subsequent bench in the
    /// group (criterion's statistical sample size, repurposed directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Runs `f` as a benchmark labeled `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), &mut f);
        self
    }

    /// Runs `f` with `input` as a benchmark labeled `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{:<32} {:>12.3?}/iter ({} iters)",
            self.name, id, per_iter, bencher.iters
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` manager.
pub struct Criterion {
    default_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_iters: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.default_iters;
        BenchmarkGroup {
            name: name.into(),
            iters,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
