//! Offline stand-in for the `criterion` crate.
//!
//! Compiles the workspace's `benches/*.rs` sources unchanged and runs each
//! benchmark as a warm-up phase followed by individually timed iterations,
//! printing the mean wall time per iteration **± the sample standard
//! deviation** so regressions can be told apart from noise. There is no
//! outlier rejection or HTML report — this exists so `cargo bench`
//! produces comparable relative numbers and `cargo build --benches` keeps
//! the bench sources compiling.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How expensive each batch's setup output is to hold in memory; accepted
/// for source compatibility, ignored by the timing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per measured iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    warmup_iters: u64,
    /// One wall-time sample per measured iteration.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured iteration count, after an
    /// untimed warm-up (caches, branch predictors, lazy allocations).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            black_box(routine(setup()));
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.warmup_iters {
            let mut input = setup();
            black_box(routine(&mut input));
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Mean and sample standard deviation of the collected iteration times.
fn mean_and_stddev(samples: &[Duration]) -> (Duration, Duration) {
    if samples.is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    let n = samples.len() as f64;
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / n;
    let var = if samples.len() < 2 {
        0.0
    } else {
        secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    (
        Duration::from_secs_f64(mean),
        Duration::from_secs_f64(var.sqrt()),
    )
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for every subsequent bench in the
    /// group (criterion's statistical sample size, repurposed directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Runs `f` as a benchmark labeled `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), &mut f);
        self
    }

    /// Runs `f` with `input` as a benchmark labeled `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        // A fifth of the sample budget (at least one, at most three
        // iterations) warms caches without inflating total runtime.
        let warmup_iters = (self.iters / 5).clamp(1, 3);
        let mut bencher = Bencher {
            iters: self.iters,
            warmup_iters,
            samples: Vec::with_capacity(self.iters as usize),
        };
        f(&mut bencher);
        let (mean, stddev) = mean_and_stddev(&bencher.samples);
        println!(
            "{}/{:<32} {:>12.3?}/iter ± {:>9.3?} ({} iters + {} warmup)",
            self.name, id, mean, stddev, bencher.iters, warmup_iters
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` manager.
pub struct Criterion {
    default_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_iters: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.default_iters;
        BenchmarkGroup {
            name: name.into(),
            iters,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_handle_degenerate_inputs() {
        assert_eq!(mean_and_stddev(&[]), (Duration::ZERO, Duration::ZERO));
        let (m, s) = mean_and_stddev(&[Duration::from_millis(4)]);
        assert_eq!(m, Duration::from_millis(4));
        assert_eq!(s, Duration::ZERO);
    }

    #[test]
    fn mean_and_stddev_match_hand_computation() {
        let samples = [Duration::from_millis(10), Duration::from_millis(30)];
        let (m, s) = mean_and_stddev(&samples);
        assert_eq!(m, Duration::from_millis(20));
        // Sample stddev of {10, 30} ms is sqrt(200) ≈ 14.142 ms.
        assert!((s.as_secs_f64() - 0.0141421356).abs() < 1e-9);
    }

    #[test]
    fn bencher_collects_one_sample_per_iteration() {
        let mut b = Bencher {
            iters: 5,
            warmup_iters: 2,
            samples: Vec::new(),
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 7, "2 warmup + 5 measured");
        let mut setup_calls = 0u64;
        b.iter_batched(
            || {
                setup_calls += 1;
            },
            |()| (),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), 5);
        assert_eq!(setup_calls, 7);
    }
}
