//! Offline stand-in for the `criterion` crate.
//!
//! Compiles the workspace's `benches/*.rs` sources unchanged and runs each
//! benchmark as a warm-up phase followed by individually timed iterations,
//! printing the mean wall time per iteration **± the sample standard
//! deviation** so regressions can be told apart from noise.
//!
//! Three statistical niceties from real criterion are reproduced:
//!
//! * **Outlier rejection** — samples further than `3 · 1.4826 · MAD` from
//!   the median (MAD = median absolute deviation; the scale factor makes
//!   it a robust σ estimate) are dropped before the mean/stddev are
//!   computed, so one scheduler hiccup cannot poison a 10-sample run.
//! * **Bootstrap confidence intervals** — the mean is resampled with
//!   replacement (deterministic xorshift seeding, so runs reproduce) and
//!   the 2.5th/97.5th percentiles of the resampled means are reported as
//!   a 95% CI alongside the stddev, and persisted in the baseline TSV.
//! * **Baselines** — `cargo bench -- --save-baseline NAME` records each
//!   benchmark's mean and CI into
//!   `<workspace target>/criterion-baselines/NAME.tsv` (override the
//!   directory with `CRITERION_BASELINE_DIR`), and
//!   `cargo bench -- --baseline NAME` compares the current run against it,
//!   printing the percent change and flagging `REGRESSION` when a bench
//!   runs >10% slower — enough for CI to diff bench tables across commits.
//!
//! There is still no HTML report; this exists so `cargo bench` produces
//! comparable, regression-flagging numbers and `cargo build --benches`
//! keeps the bench sources compiling.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How expensive each batch's setup output is to hold in memory; accepted
/// for source compatibility, ignored by the timing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per measured iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    warmup_iters: u64,
    /// One wall-time sample per measured iteration.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured iteration count, after an
    /// untimed warm-up (caches, branch predictors, lazy allocations).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            black_box(routine(setup()));
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by mutable reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.warmup_iters {
            let mut input = setup();
            black_box(routine(&mut input));
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Median of an already-sorted slice (0 for empty input).
fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Scale factor turning the median absolute deviation into a consistent
/// estimate of σ for normally distributed samples.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Drops samples further than `3 · 1.4826 · MAD` from the median — the
/// robust analogue of a 3σ cut. Returns the surviving samples and the
/// rejected count. Fewer than 4 samples (or a zero MAD, i.e. a majority of
/// identical timings) disable rejection: there is no spread to judge
/// against.
fn reject_outliers(samples: &[Duration]) -> (Vec<Duration>, usize) {
    if samples.len() < 4 {
        return (samples.to_vec(), 0);
    }
    let mut secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let med = median_sorted(&secs);
    let mut devs: Vec<f64> = secs.iter().map(|s| (s - med).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).expect("deviations are finite"));
    let mad = median_sorted(&devs);
    if mad == 0.0 {
        return (samples.to_vec(), 0);
    }
    let cutoff = 3.0 * MAD_TO_SIGMA * mad;
    let kept: Vec<Duration> = samples
        .iter()
        .copied()
        .filter(|s| (s.as_secs_f64() - med).abs() <= cutoff)
        .collect();
    let rejected = samples.len() - kept.len();
    (kept, rejected)
}

/// Mean and sample standard deviation of the collected iteration times.
fn mean_and_stddev(samples: &[Duration]) -> (Duration, Duration) {
    if samples.is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    let n = samples.len() as f64;
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / n;
    let var = if samples.len() < 2 {
        0.0
    } else {
        secs.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    (
        Duration::from_secs_f64(mean),
        Duration::from_secs_f64(var.sqrt()),
    )
}

/// Bootstrap resamples drawn when estimating the confidence interval.
const BOOTSTRAP_RESAMPLES: usize = 200;

/// Lower/upper tail of the reported percentile interval (95% two-sided).
const CI_TAIL: f64 = 0.025;

/// A tiny deterministic xorshift64* generator — the bootstrap must not
/// depend on ambient randomness, or CI comparisons would not reproduce.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_index(&mut self, bound: usize) -> usize {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound as u64) as usize
    }
}

/// Bootstrap percentile confidence interval of the mean: resamples the
/// (outlier-filtered) samples with replacement, computes each resample's
/// mean, and returns the `[2.5%, 97.5%]` percentiles of that
/// distribution. Degenerate inputs (0 or 1 sample) collapse to the mean.
fn bootstrap_ci(samples: &[Duration]) -> (Duration, Duration) {
    if samples.len() < 2 {
        let (mean, _) = mean_and_stddev(samples);
        return (mean, mean);
    }
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    // Seed from the sample data so identical runs resample identically.
    let seed = secs.iter().fold(0x9E37_79B9_7F4A_7C15u64, |acc, s| {
        acc.rotate_left(7) ^ s.to_bits()
    });
    let mut rng = XorShift::new(seed);
    let mut means = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    for _ in 0..BOOTSTRAP_RESAMPLES {
        let sum: f64 = (0..secs.len())
            .map(|_| secs[rng.next_index(secs.len())])
            .sum();
        means.push(sum / secs.len() as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("means are finite"));
    let pick = |q: f64| -> Duration {
        let idx = ((means.len() - 1) as f64 * q).round() as usize;
        Duration::from_secs_f64(means[idx])
    };
    (pick(CI_TAIL), pick(1.0 - CI_TAIL))
}

/// One benchmark's persisted summary: mean and its bootstrap 95% CI, all
/// in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BaselineEntry {
    mean: f64,
    ci_lo: f64,
    ci_hi: f64,
}

/// Serializes a baseline map as TSV lines
/// (`bench-id <TAB> mean-s <TAB> ci-lo-s <TAB> ci-hi-s`).
fn render_baseline(map: &BTreeMap<String, BaselineEntry>) -> String {
    let mut out = String::new();
    for (id, e) in map {
        out.push_str(&format!(
            "{id}\t{:e}\t{:e}\t{:e}\n",
            e.mean, e.ci_lo, e.ci_hi
        ));
    }
    out
}

/// Parses the TSV produced by [`render_baseline`], ignoring malformed
/// lines (a hand-edited or truncated file degrades to fewer comparisons,
/// never to a crash). Legacy two-column baselines (mean only) still parse
/// — their CI collapses to the mean.
fn parse_baseline(text: &str) -> BTreeMap<String, BaselineEntry> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let mut fields = line.split('\t');
        let Some(id) = fields.next() else { continue };
        let Some(mean) = fields.next().and_then(|s| s.trim().parse::<f64>().ok()) else {
            continue;
        };
        let ci_lo = fields
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(mean);
        let ci_hi = fields
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(mean);
        map.insert(id.to_string(), BaselineEntry { mean, ci_lo, ci_hi });
    }
    map
}

/// Directory holding saved baselines: `CRITERION_BASELINE_DIR` if set,
/// else `criterion-baselines/` under the shared workspace target directory
/// (`CARGO_TARGET_DIR`, or the in-tree default — *not* the bench binary's
/// CWD, which cargo sets to the package root and would scatter `target/`
/// dirs across the workspace).
fn baseline_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CRITERION_BASELINE_DIR") {
        return PathBuf::from(dir);
    }
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // This stub is vendored at <workspace>/vendor/criterion.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    target.join("criterion-baselines")
}

fn baseline_path(root: &std::path::Path, name: &str) -> PathBuf {
    root.join(format!("{name}.tsv"))
}

/// A bench is flagged as a regression when it runs more than this much
/// slower than its baseline.
const REGRESSION_THRESHOLD_PCT: f64 = 10.0;

/// Renders the comparison suffix against a saved baseline mean, flagging
/// `REGRESSION` when the current mean is more than
/// [`REGRESSION_THRESHOLD_PCT`] slower.
fn baseline_note(mean_secs: f64, base_secs: f64, baseline_name: &str) -> String {
    let change = (mean_secs - base_secs) / base_secs * 100.0;
    let mut note = format!(", {change:+.1}% vs '{baseline_name}'");
    if change > REGRESSION_THRESHOLD_PCT {
        note.push_str(" REGRESSION");
    }
    note
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for every subsequent bench in the
    /// group (criterion's statistical sample size, repurposed directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Runs `f` as a benchmark labeled `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), &mut f);
        self
    }

    /// Runs `f` with `input` as a benchmark labeled `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        // A fifth of the sample budget (at least one, at most three
        // iterations) warms caches without inflating total runtime.
        let warmup_iters = (self.iters / 5).clamp(1, 3);
        let mut bencher = Bencher {
            iters: self.iters,
            warmup_iters,
            samples: Vec::with_capacity(self.iters as usize),
        };
        f(&mut bencher);
        let (kept, rejected) = reject_outliers(&bencher.samples);
        let (mean, stddev) = mean_and_stddev(&kept);
        let (ci_lo, ci_hi) = bootstrap_ci(&kept);
        let full_id = format!("{}/{}", self.name, id);
        self.criterion.recorded.insert(
            full_id.clone(),
            BaselineEntry {
                mean: mean.as_secs_f64(),
                ci_lo: ci_lo.as_secs_f64(),
                ci_hi: ci_hi.as_secs_f64(),
            },
        );
        let mut extra = String::new();
        if rejected > 0 {
            extra.push_str(&format!(", {rejected} outliers rejected"));
        }
        if let Some((name, base)) = self
            .criterion
            .baseline_name
            .as_deref()
            .and_then(|n| self.criterion.baseline.get(&full_id).map(|b| (n, *b)))
        {
            extra.push_str(&baseline_note(mean.as_secs_f64(), base.mean, name));
        }
        println!(
            "{}/{:<32} {:>12.3?}/iter ± {:>9.3?} [95% CI {:.3?}..{:.3?}] ({} iters + {} warmup{})",
            self.name, id, mean, stddev, ci_lo, ci_hi, bencher.iters, warmup_iters, extra
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` manager.
///
/// `Criterion::default()` reads the bench binary's command line:
/// `--save-baseline NAME` records this run's means on drop, and
/// `--baseline NAME` compares against a previously saved run. Unknown
/// flags (e.g. cargo's own `--bench`) are ignored.
pub struct Criterion {
    default_iters: u64,
    save_baseline: Option<String>,
    baseline_name: Option<String>,
    baseline: BTreeMap<String, BaselineEntry>,
    recorded: BTreeMap<String, BaselineEntry>,
    /// Where baseline TSVs live; injectable so tests never have to mutate
    /// process-global environment variables.
    baseline_root: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args_with_root(std::env::args().skip(1), baseline_dir())
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Some(name) = self.save_baseline.clone() else {
            return;
        };
        if self.recorded.is_empty() {
            return;
        }
        // Merge with whatever is already on disk: each bench binary (and
        // each group) contributes its own rows to the shared baseline.
        let path = baseline_path(&self.baseline_root, &name);
        let mut map = std::fs::read_to_string(&path)
            .map(|text| parse_baseline(&text))
            .unwrap_or_default();
        map.extend(self.recorded.iter().map(|(k, v)| (k.clone(), *v)));
        if std::fs::create_dir_all(&self.baseline_root).is_ok()
            && std::fs::write(&path, render_baseline(&map)).is_ok()
        {
            println!(
                "saved baseline '{name}' ({} benches) to {}",
                map.len(),
                path.display()
            );
        } else {
            eprintln!("warning: could not write baseline '{name}'");
        }
    }
}

impl Criterion {
    /// Builds a manager from an explicit argument list and baseline
    /// directory (testable core of [`Criterion::default`]).
    fn from_args_with_root(args: impl Iterator<Item = String>, baseline_root: PathBuf) -> Self {
        let mut save_baseline = None;
        let mut baseline_name = None;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--save-baseline" => save_baseline = args.next(),
                "--baseline" => baseline_name = args.next(),
                _ => {} // cargo's --bench, filters, etc.
            }
        }
        let baseline = baseline_name
            .as_deref()
            .and_then(|name| std::fs::read_to_string(baseline_path(&baseline_root, name)).ok())
            .map(|text| parse_baseline(&text))
            .unwrap_or_default();
        Criterion {
            default_iters: 10,
            save_baseline,
            baseline_name,
            baseline,
            recorded: BTreeMap::new(),
            baseline_root,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.default_iters;
        BenchmarkGroup {
            name: name.into(),
            iters,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_handle_degenerate_inputs() {
        assert_eq!(mean_and_stddev(&[]), (Duration::ZERO, Duration::ZERO));
        let (m, s) = mean_and_stddev(&[Duration::from_millis(4)]);
        assert_eq!(m, Duration::from_millis(4));
        assert_eq!(s, Duration::ZERO);
    }

    #[test]
    fn mean_and_stddev_match_hand_computation() {
        let samples = [Duration::from_millis(10), Duration::from_millis(30)];
        let (m, s) = mean_and_stddev(&samples);
        assert_eq!(m, Duration::from_millis(20));
        // Sample stddev of {10, 30} ms is sqrt(200) ≈ 14.142 ms.
        assert!((s.as_secs_f64() - 0.0141421356).abs() < 1e-9);
    }

    #[test]
    fn mad_rejection_drops_scheduler_hiccups_only() {
        let ms = Duration::from_millis;
        // A tight cluster plus one 100x spike: the spike goes.
        let samples = [ms(10), ms(11), ms(10), ms(12), ms(11), ms(1000)];
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 5);
        assert!(kept.iter().all(|s| *s < ms(100)));
        // Uniform spread: nothing is an outlier.
        let samples = [ms(10), ms(11), ms(12), ms(13), ms(14)];
        let (kept, rejected) = reject_outliers(&samples);
        assert_eq!((kept.len(), rejected), (5, 0));
        // Majority-identical samples (MAD = 0) and tiny runs: untouched.
        let samples = [ms(5), ms(5), ms(5), ms(900)];
        assert_eq!(reject_outliers(&samples).1, 0);
        assert_eq!(reject_outliers(&samples[..3]).1, 0);
    }

    #[test]
    fn rejected_outliers_shrink_the_reported_stddev() {
        let ms = Duration::from_millis;
        let samples = [ms(10), ms(11), ms(10), ms(12), ms(11), ms(1000)];
        let (_, raw_stddev) = mean_and_stddev(&samples);
        let (kept, _) = reject_outliers(&samples);
        let (mean, stddev) = mean_and_stddev(&kept);
        assert!(stddev < raw_stddev / 10);
        assert!(mean < ms(13));
    }

    fn entry(mean: f64, ci_lo: f64, ci_hi: f64) -> BaselineEntry {
        BaselineEntry { mean, ci_lo, ci_hi }
    }

    #[test]
    fn baseline_format_round_trips_and_tolerates_garbage() {
        let mut map = BTreeMap::new();
        map.insert("group/bench-a".to_string(), entry(1.25e-3, 1.2e-3, 1.3e-3));
        map.insert(
            "group/bench b/32".to_string(),
            entry(7.5e-9, 7.0e-9, 8.0e-9),
        );
        let text = render_baseline(&map);
        assert_eq!(parse_baseline(&text), map);
        let mangled = format!("not a line\n{text}trailing\tNaN-ish\tx\n");
        assert_eq!(parse_baseline(&mangled), map);
        assert!(parse_baseline("").is_empty());
    }

    #[test]
    fn legacy_two_column_baselines_still_parse() {
        // Pre-CI baselines carried only the mean; they must load with the
        // CI collapsed onto it rather than being dropped.
        let map = parse_baseline("g/old\t2.5e-3\n");
        assert_eq!(map.get("g/old"), Some(&entry(2.5e-3, 2.5e-3, 2.5e-3)));
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_and_is_deterministic() {
        let ms = Duration::from_millis;
        let samples: Vec<Duration> = (0..20).map(|i| ms(10 + (i % 5))).collect();
        let (mean, _) = mean_and_stddev(&samples);
        let (lo, hi) = bootstrap_ci(&samples);
        assert!(lo <= mean && mean <= hi, "{lo:?} !<= {mean:?} !<= {hi:?}");
        assert!(lo >= ms(10) && hi <= ms(14), "CI outside the sample range");
        // Deterministic: same samples, same interval.
        assert_eq!(bootstrap_ci(&samples), (lo, hi));
        // Identical samples collapse the interval to a point.
        let flat = vec![ms(7); 12];
        assert_eq!(bootstrap_ci(&flat), (ms(7), ms(7)));
        // Degenerate inputs collapse to the mean.
        assert_eq!(bootstrap_ci(&[]), (Duration::ZERO, Duration::ZERO));
        assert_eq!(bootstrap_ci(&[ms(4)]), (ms(4), ms(4)));
    }

    #[test]
    fn bootstrap_ci_narrows_with_more_samples() {
        // Same spread, 4 vs 64 samples: the CI of the mean must shrink.
        let ms = Duration::from_millis;
        let small: Vec<Duration> = (0..4).map(|i| ms(10 + 10 * (i % 2))).collect();
        let big: Vec<Duration> = (0..64).map(|i| ms(10 + 10 * (i % 2))).collect();
        let width = |s: &[Duration]| {
            let (lo, hi) = bootstrap_ci(s);
            hi - lo
        };
        assert!(
            width(&big) < width(&small),
            "64-sample CI {:?} not narrower than 4-sample CI {:?}",
            width(&big),
            width(&small)
        );
    }

    #[test]
    fn xorshift_indices_are_in_bounds_and_spread() {
        let mut rng = XorShift::new(42);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let i = rng.next_index(8);
            assert!(i < 8);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "xorshift never hit some bucket");
    }

    /// A scratch baseline directory, injected directly (never via the
    /// process environment — tests run in parallel in one process, and
    /// mutating env vars races other threads' reads).
    fn scratch_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "linview-criterion-baseline-{tag}-{}",
            std::process::id()
        ))
    }

    fn criterion_with(args: &[&str], root: &std::path::Path) -> Criterion {
        Criterion::from_args_with_root(args.iter().map(|s| s.to_string()), root.to_path_buf())
    }

    #[test]
    fn args_select_save_and_compare_modes() {
        let root = scratch_root("args");
        let c = criterion_with(&["--bench", "--save-baseline", "main", "somefilter"], &root);
        assert_eq!(c.save_baseline.as_deref(), Some("main"));
        assert_eq!(c.baseline_name, None);
        let c = criterion_with(&["--baseline", "main"], &root);
        assert_eq!(c.baseline_name.as_deref(), Some("main"));
        assert_eq!(c.save_baseline, None);
        let c = criterion_with(&[], &root);
        assert!(c.save_baseline.is_none() && c.baseline_name.is_none());
    }

    #[test]
    fn baseline_note_flags_only_meaningful_slowdowns() {
        assert_eq!(baseline_note(1.0, 1.0, "m"), ", +0.0% vs 'm'");
        assert_eq!(baseline_note(1.05, 1.0, "m"), ", +5.0% vs 'm'");
        assert_eq!(baseline_note(0.5, 1.0, "m"), ", -50.0% vs 'm'");
        // Past the 10% threshold the regression marker appears.
        assert_eq!(baseline_note(1.25, 1.0, "m"), ", +25.0% vs 'm' REGRESSION");
        assert!(!baseline_note(1.09, 1.0, "m").contains("REGRESSION"));
        assert!(baseline_note(1.11, 1.0, "m").ends_with("REGRESSION"));
    }

    #[test]
    fn save_then_compare_round_trips_through_disk() {
        let root = scratch_root("save");
        {
            let mut c = criterion_with(&["--save-baseline", "t"], &root);
            c.recorded.insert("g/fast".into(), entry(1.0, 0.9, 1.1));
            // Drop writes the file.
        }
        let loaded = parse_baseline(
            &std::fs::read_to_string(baseline_path(&root, "t")).expect("baseline written"),
        );
        assert_eq!(loaded.get("g/fast"), Some(&entry(1.0, 0.9, 1.1)));
        // A second save merges rather than clobbers.
        {
            let mut c = criterion_with(&["--save-baseline", "t"], &root);
            c.recorded.insert("g/slow".into(), entry(2.0, 1.9, 2.1));
        }
        let c = criterion_with(&["--baseline", "t"], &root);
        assert_eq!(c.baseline.len(), 2);
        assert_eq!(c.baseline.get("g/slow"), Some(&entry(2.0, 1.9, 2.1)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn bencher_collects_one_sample_per_iteration() {
        let mut b = Bencher {
            iters: 5,
            warmup_iters: 2,
            samples: Vec::new(),
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 7, "2 warmup + 5 measured");
        let mut setup_calls = 0u64;
        b.iter_batched(
            || {
                setup_calls += 1;
            },
            |()| (),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), 5);
        assert_eq!(setup_calls, 7);
    }
}
