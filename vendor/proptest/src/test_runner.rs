//! Test-runner types: configuration, case errors, and the deterministic RNG
//! from which strategies sample.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The RNG strategies sample from.
pub type TestRng = StdRng;

/// A deterministic RNG seeded from the fully-qualified test name, so every
/// run of a given test draws the same cases.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test path.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure of a single sampled case (produced by the `prop_assert*`
/// macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a proptest case body.
pub type TestCaseResult = Result<(), TestCaseError>;
