//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, range/tuple/`Just` strategies, `prop_map`,
//! `prop_flat_map`, `prop_recursive`, [`prop_oneof!`], `collection::vec`,
//! and the `prop_assert*` macros. Cases are sampled deterministically from
//! a seed derived from the test name, so failures reproduce across runs.
//! There is no shrinking: a failing case reports its case number only.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `collection::vec` — strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// The glob import used by every proptest-based test file.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// A weighted (or unweighted) union of strategies over one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each function body runs once per case (default 32; override with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`) and may use the
/// `prop_assert*` macros or `return Ok(())` to skip a draw.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $(
         $(#[$meta:meta])*
         fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::rng_for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let __strategy = ($($strategy,)+);
                for __case in 0..__config.cases {
                    let __value =
                        $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = {
                        let ($($pat,)+) = __value;
                        #[allow(clippy::redundant_closure_call)]
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}
