//! Strategies: composable descriptions of how to sample random values.
//!
//! Unlike real proptest there is no shrinking and no size-driven recursion
//! budget; `prop_recursive` bounds depth structurally by unioning the base
//! strategy back in at every level.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for sampling values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy behind a cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            sampler: Rc::new(move |rng| self.sample(rng)),
        }
    }

    /// A strategy applying `f` to every sampled value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy sampling an intermediate value, then sampling from the
    /// strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` receives the strategy for strictly
    /// smaller values and returns the composite case. Depth is bounded by
    /// `depth`; at every level the base (leaf) strategy stays reachable
    /// with weight 1 against 2 for the composite, so samples mix shallow
    /// and deep structures.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let composite = f(current).boxed();
            current = Union::new(vec![(1, base.clone()), (2, composite)]).boxed();
        }
        current
    }
}

/// A type-erased, cheaply-cloneable strategy handle.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        self
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted choice among strategies of a common value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A union of the given `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.sample(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick within total weight")
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
}

/// A vector-length range, as accepted by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_exclusive: len + 1,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = rng_for_test("strategy::basics");
        let s = (2usize..8, -1.0f64..1.0).prop_map(|(n, x)| (n * 2, x.abs()));
        for _ in 0..200 {
            let (n, x) = s.sample(&mut rng);
            assert!((4..16).contains(&n) && n % 2 == 0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn union_respects_zero_weight_arms_absence() {
        let mut rng = rng_for_test("strategy::union");
        let s = Union::new(vec![(1, Just(1u32).boxed()), (3, Just(2u32).boxed())]);
        let mut seen = [0u32; 3];
        for _ in 0..400 {
            seen[s.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > 0 && seen[2] > seen[1]);
    }

    #[test]
    fn recursive_strategies_terminate_and_vary_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = rng_for_test("strategy::recursive");
        let mut max_depth = 0;
        for _ in 0..300 {
            let t = s.sample(&mut rng);
            let d = depth(&t);
            assert!(d <= 4);
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "recursion never fired (max {max_depth})");
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let s = crate::collection::vec(0u32..5, 1..7);
        let mut rng = rng_for_test("strategy::vec");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
